//! Wall-clock deadlines for in-flight work.
//!
//! One [`Watchdog`] thread serves any number of concurrent jobs: each job
//! [arms](Watchdog::watch) an entry with a deadline and an expiry action
//! (typically: cancel the job's [`CancelToken`](ucsim_model::CancelToken)
//! and mark it failed), and *disarms* it by dropping the returned
//! [`WatchGuard`] when the job finishes first. Expiry actions run on the
//! watchdog thread, so they must be quick and must not panic; cooperative
//! cancellation — flip a token the worker polls — is exactly that.

use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// The action a [`Watchdog`] runs when an armed deadline expires.
type ExpireAction = Box<dyn FnOnce() + Send>;

struct Entry {
    id: u64,
    deadline: Instant,
    action: ExpireAction,
}

#[derive(Default)]
struct WdState {
    entries: Vec<Entry>,
    next_id: u64,
    shutdown: bool,
}

struct WdShared {
    state: Mutex<WdState>,
    changed: Condvar,
}

/// A single timer thread firing expiry actions for armed deadlines.
pub struct Watchdog {
    shared: Arc<WdShared>,
    thread: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Spawns the watchdog thread. One per process/server is plenty.
    pub fn new() -> Self {
        let shared = Arc::new(WdShared {
            state: Mutex::new(WdState::default()),
            changed: Condvar::new(),
        });
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("watchdog".to_owned())
                .spawn(move || run(&shared))
                .expect("spawn watchdog thread")
        };
        Watchdog {
            shared,
            thread: Some(thread),
        }
    }

    /// Arms a deadline: `on_expire` runs on the watchdog thread once
    /// `deadline` passes, unless the returned guard is dropped (or
    /// [`WatchGuard::disarm`]ed) first. Exactly one of the two happens.
    pub fn watch(
        &self,
        deadline: Instant,
        on_expire: impl FnOnce() + Send + 'static,
    ) -> WatchGuard {
        let mut st = self.shared.state.lock().expect("watchdog lock");
        let id = st.next_id;
        st.next_id += 1;
        st.entries.push(Entry {
            id,
            deadline,
            action: Box::new(on_expire),
        });
        drop(st);
        self.shared.changed.notify_all();
        WatchGuard {
            shared: Arc::clone(&self.shared),
            id,
        }
    }

    /// Number of currently armed (not yet expired or disarmed) deadlines.
    pub fn armed(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("watchdog lock")
            .entries
            .len()
    }

    /// Stops the watchdog thread. Entries still armed are dropped without
    /// firing — shutdown supersedes per-job deadlines.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("watchdog lock");
            st.shutdown = true;
            st.entries.clear();
        }
        self.shared.changed.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog::new()
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop();
        }
    }
}

/// Disarms its [`Watchdog`] entry on drop (or explicitly via
/// [`disarm`](Self::disarm)). If the entry already expired, dropping the
/// guard is a no-op — the action ran, exactly once.
pub struct WatchGuard {
    shared: Arc<WdShared>,
    id: u64,
}

impl WatchGuard {
    /// Disarms the deadline now (equivalent to dropping the guard).
    pub fn disarm(self) {}
}

impl Drop for WatchGuard {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("watchdog lock");
        st.entries.retain(|e| e.id != self.id);
        drop(st);
        self.shared.changed.notify_all();
    }
}

fn run(shared: &WdShared) {
    let mut st = shared.state.lock().expect("watchdog lock");
    loop {
        if st.shutdown {
            return;
        }
        let now = Instant::now();
        // Collect every expired action, removing the entries first so a
        // concurrent guard drop can no longer race the firing.
        let mut due: Vec<ExpireAction> = Vec::new();
        let mut i = 0;
        while i < st.entries.len() {
            if st.entries[i].deadline <= now {
                due.push(st.entries.swap_remove(i).action);
            } else {
                i += 1;
            }
        }
        if !due.is_empty() {
            drop(st);
            for action in due {
                action();
            }
            st = shared.state.lock().expect("watchdog lock");
            continue;
        }
        st = match st.entries.iter().map(|e| e.deadline).min() {
            Some(next) => {
                let wait = next.saturating_duration_since(now);
                shared
                    .changed
                    .wait_timeout(st, wait)
                    .expect("watchdog lock")
                    .0
            }
            None => shared.changed.wait(st).expect("watchdog lock"),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    #[test]
    fn expired_deadline_fires_exactly_once() {
        let wd = Watchdog::new();
        let fired = Arc::new(AtomicU64::new(0));
        let f = Arc::clone(&fired);
        let guard = wd.watch(Instant::now() + Duration::from_millis(20), move || {
            f.fetch_add(1, Ordering::AcqRel);
        });
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(fired.load(Ordering::Acquire), 1);
        drop(guard); // after expiry: no-op
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(fired.load(Ordering::Acquire), 1);
        wd.shutdown();
    }

    #[test]
    fn disarmed_deadline_never_fires() {
        let wd = Watchdog::new();
        let fired = Arc::new(AtomicU64::new(0));
        let f = Arc::clone(&fired);
        let guard = wd.watch(Instant::now() + Duration::from_millis(60), move || {
            f.fetch_add(1, Ordering::AcqRel);
        });
        guard.disarm();
        assert_eq!(wd.armed(), 0);
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(fired.load(Ordering::Acquire), 0);
        wd.shutdown();
    }

    #[test]
    fn many_deadlines_fire_in_any_order() {
        let wd = Watchdog::new();
        let fired = Arc::new(AtomicU64::new(0));
        let guards: Vec<_> = (0..10)
            .map(|i| {
                let f = Arc::clone(&fired);
                wd.watch(
                    Instant::now() + Duration::from_millis(10 + i * 5),
                    move || {
                        f.fetch_add(1, Ordering::AcqRel);
                    },
                )
            })
            .collect();
        let deadline = Instant::now() + Duration::from_secs(5);
        while fired.load(Ordering::Acquire) < 10 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(fired.load(Ordering::Acquire), 10);
        drop(guards);
        wd.shutdown();
    }

    #[test]
    fn shutdown_drops_armed_entries_without_firing() {
        let wd = Watchdog::new();
        let fired = Arc::new(AtomicU64::new(0));
        let f = Arc::clone(&fired);
        let _guard = wd.watch(Instant::now() + Duration::from_millis(50), move || {
            f.fetch_add(1, Ordering::AcqRel);
        });
        wd.shutdown();
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(fired.load(Ordering::Acquire), 0);
    }
}

//! Priority + weighted-fair-share scheduling over cancellable work items.
//!
//! [`Scheduler`] replaces the single bounded FIFO for workloads where
//! independent submitters (tenants) compete for the same worker pool. It
//! keeps one queue per tenant and serves them by **virtual-time weighted
//! fair queueing**: every pop charges the chosen tenant's virtual clock
//! `SCALE / weight`, and the next pop goes to the backlogged tenant with
//! the smallest clock. A tenant with weight 4 therefore drains 4× as fast
//! as a weight-1 tenant under contention, and an idle tenant's clock is
//! clamped forward on re-activation so it can never hoard credit — every
//! backlogged tenant keeps making progress (starvation-free).
//!
//! Within one tenant, entries are served strictly by descending
//! [`priority`](Scheduler::enqueue) and FIFO within equal priority.
//!
//! Two submission paths share the structure:
//!
//! * [`try_submit`](Scheduler::try_submit) — bounded: rejects with
//!   [`PushError::Full`] once the *total* backlog reaches the configured
//!   capacity. This is the explicit backpressure point for interactive
//!   single-job submissions (HTTP 429).
//! * [`enqueue`](Scheduler::enqueue) — unbounded: sweep *plans* enqueue
//!   their cells without blocking or bouncing; the planner itself bounds
//!   the cell count, so a plan many times larger than the interactive
//!   capacity flows through without a feeder thread.
//!
//! Every entry carries a [`CancelToken`]. Cancelled entries are dropped at
//! pop time without ever reaching a worker (counted as *preempted*), which
//! is how `DELETE /v1/matrix/:id` preempts still-queued cells.
//!
//! Consumers drain the scheduler through the [`WorkSource`] trait, which
//! [`SupervisedPool`](crate::SupervisedPool) accepts in place of a
//! [`BoundedQueue`](crate::BoundedQueue).

use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use ucsim_model::CancelToken;

use crate::PushError;

/// Anything a [`SupervisedPool`](crate::SupervisedPool) worker can drain:
/// a blocking pop that returns `None` once the source is closed and empty.
///
/// Implemented by [`BoundedQueue`](crate::BoundedQueue) (plain FIFO) and
/// [`Scheduler`] (priority + fair share).
pub trait WorkSource<T>: Send + Sync {
    /// Dequeues the next item, blocking while the source is empty.
    /// Returns `None` once the source is closed **and** drained — the
    /// worker-loop termination signal. The returned
    /// [`QueueToken`](ucsim_obs::QueueToken) reports the queue wait and
    /// re-installs the enqueuing request's scope on
    /// [`on_dequeue`](ucsim_obs::QueueToken::on_dequeue).
    fn pop_with_obs(&self) -> Option<(T, ucsim_obs::QueueToken)>;
}

impl<T: Send> WorkSource<T> for crate::BoundedQueue<T> {
    fn pop_with_obs(&self) -> Option<(T, ucsim_obs::QueueToken)> {
        crate::BoundedQueue::pop_with_obs(self)
    }
}

/// Virtual-time scale: one pop charges `SCALE / weight`, so integer
/// division keeps sub-unit precision for weights up to ~one million.
const VTIME_SCALE: u64 = 1 << 20;

struct Entry<T> {
    item: T,
    priority: u64,
    seq: u64,
    cancel: CancelToken,
    token: ucsim_obs::QueueToken,
    enqueued: Instant,
}

struct TenantQueue<T> {
    name: String,
    weight: u64,
    /// Virtual clock: total normalized service this tenant has received.
    vtime: u64,
    entries: Vec<Entry<T>>,
}

struct SchedState<T> {
    tenants: Vec<TenantQueue<T>>,
    closed: bool,
    next_seq: u64,
    total: usize,
    served: u64,
    preempted: u64,
    /// Monotone floor for re-activating tenants when no one is backlogged.
    vtime_floor: u64,
    /// priority → (pops, total queue-wait µs).
    wait_by_priority: BTreeMap<u64, (u64, u64)>,
}

/// Point-in-time scheduler statistics for metrics endpoints.
#[derive(Debug, Clone)]
pub struct SchedStats {
    /// Entries currently queued across all tenants (cancelled-but-not-yet
    /// -dropped entries included).
    pub depth: usize,
    /// Entries handed to workers since construction.
    pub served: u64,
    /// Cancelled entries dropped at pop time without reaching a worker.
    pub preempted: u64,
    /// Per-tenant `(name, weight, queued-entry count)`.
    pub tenants: Vec<(String, u64, usize)>,
    /// Per-priority `(priority, pops, total queue-wait µs)`.
    pub wait_by_priority: Vec<(u64, u64, u64)>,
}

/// A multi-tenant priority scheduler (see the module docs for the
/// algorithm). Construct with [`new`](Self::new), configure weights with
/// [`set_weight`](Self::set_weight), submit with
/// [`try_submit`](Self::try_submit) / [`enqueue`](Self::enqueue), and
/// drain through [`WorkSource::pop_with_obs`].
pub struct Scheduler<T> {
    state: Mutex<SchedState<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> Scheduler<T> {
    /// Creates a scheduler whose *bounded* path
    /// ([`try_submit`](Self::try_submit)) rejects once the total backlog
    /// reaches `capacity` (minimum 1). Tenants are created on first use
    /// with weight 1.
    pub fn new(capacity: usize) -> Self {
        Scheduler {
            state: Mutex::new(SchedState {
                tenants: Vec::new(),
                closed: false,
                next_seq: 0,
                total: 0,
                served: 0,
                preempted: 0,
                vtime_floor: 0,
                wait_by_priority: BTreeMap::new(),
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Sets `tenant`'s fair-share weight (clamped to ≥ 1), creating the
    /// tenant if it does not exist yet. Under contention a tenant drains
    /// in proportion to its weight.
    pub fn set_weight(&self, tenant: &str, weight: u64) {
        let mut st = self.state.lock().expect("sched lock");
        let idx = Self::tenant_index(&mut st, tenant);
        st.tenants[idx].weight = weight.max(1);
    }

    fn tenant_index(st: &mut SchedState<T>, tenant: &str) -> usize {
        if let Some(i) = st.tenants.iter().position(|t| t.name == tenant) {
            return i;
        }
        st.tenants.push(TenantQueue {
            name: tenant.to_owned(),
            weight: 1,
            vtime: st.vtime_floor,
            entries: Vec::new(),
        });
        st.tenants.len() - 1
    }

    fn push_entry(
        st: &mut SchedState<T>,
        tenant: &str,
        priority: u64,
        cancel: CancelToken,
        item: T,
    ) {
        let idx = Self::tenant_index(st, tenant);
        if st.tenants[idx].entries.is_empty() {
            // Re-activation clamp: an idle tenant's clock catches up to
            // the busiest-progressed floor so idling never banks credit.
            let min_backlogged = st
                .tenants
                .iter()
                .filter(|t| !t.entries.is_empty())
                .map(|t| t.vtime)
                .min()
                .unwrap_or(st.vtime_floor);
            let t = &mut st.tenants[idx];
            t.vtime = t.vtime.max(min_backlogged);
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.tenants[idx].entries.push(Entry {
            item,
            priority,
            seq,
            cancel,
            token: ucsim_obs::QueueToken::capture(),
            enqueued: Instant::now(),
        });
        st.total += 1;
    }

    /// Bounded submission: enqueues `item` for `tenant` at `priority`
    /// (higher is served first within the tenant), or hands it back.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] once the total backlog is at capacity,
    /// [`PushError::Closed`] after [`close`](Self::close).
    pub fn try_submit(
        &self,
        tenant: &str,
        priority: u64,
        cancel: CancelToken,
        item: T,
    ) -> Result<(), PushError<T>> {
        let mut st = self.state.lock().expect("sched lock");
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.total >= self.capacity {
            return Err(PushError::Full(item));
        }
        Self::push_entry(&mut st, tenant, priority, cancel, item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Unbounded submission for plan cells: never blocks and never
    /// reports `Full` — the planner bounds how many cells exist, so the
    /// scheduler accepts them all and workers pull at their own pace.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] after [`close`](Self::close).
    pub fn enqueue(
        &self,
        tenant: &str,
        priority: u64,
        cancel: CancelToken,
        item: T,
    ) -> Result<(), PushError<T>> {
        let mut st = self.state.lock().expect("sched lock");
        if st.closed {
            return Err(PushError::Closed(item));
        }
        Self::push_entry(&mut st, tenant, priority, cancel, item);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Picks the next entry under the lock: drop cancelled entries, then
    /// serve the min-vtime backlogged tenant's best (priority, seq) entry.
    fn take_next(st: &mut SchedState<T>) -> Option<(T, ucsim_obs::QueueToken)> {
        loop {
            // Preemption: purge cancelled entries everywhere first so a
            // fully-cancelled tenant cannot win the vtime race.
            let mut dropped = 0usize;
            for t in &mut st.tenants {
                let before = t.entries.len();
                t.entries.retain(|e| !e.cancel.is_cancelled());
                dropped += before - t.entries.len();
            }
            st.total -= dropped;
            st.preempted += dropped as u64;

            let idx = st
                .tenants
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.entries.is_empty())
                .min_by_key(|(_, t)| t.vtime)
                .map(|(i, _)| i)?;

            st.vtime_floor = st.vtime_floor.max(st.tenants[idx].vtime);
            let t = &mut st.tenants[idx];
            let best = t
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (std::cmp::Reverse(e.priority), e.seq))
                .map(|(i, _)| i)
                .expect("non-empty tenant queue");
            let entry = t.entries.remove(best);
            t.vtime += VTIME_SCALE / t.weight;
            st.total -= 1;
            if entry.cancel.is_cancelled() {
                // Raced with a cancel after the purge; uncharge and retry.
                let t = &mut st.tenants[idx];
                t.vtime -= VTIME_SCALE / t.weight;
                st.preempted += 1;
                continue;
            }
            st.served += 1;
            let wait_us = entry.enqueued.elapsed().as_micros() as u64;
            let slot = st.wait_by_priority.entry(entry.priority).or_insert((0, 0));
            slot.0 += 1;
            slot.1 += wait_us;
            return Some((entry.item, entry.token));
        }
    }

    /// Dequeues the next schedulable item if one is ready; never blocks.
    /// A draining server uses this to sweep out still-queued jobs and
    /// fail them explicitly rather than abandoning them at close.
    pub fn try_pop(&self) -> Option<T> {
        let mut st = self.state.lock().expect("sched lock");
        Self::take_next(&mut st).map(|(item, _)| item)
    }

    /// Closes the scheduler: future submissions fail, and consumers drain
    /// what remains then receive `None`. Idempotent.
    pub fn close(&self) {
        self.state.lock().expect("sched lock").closed = true;
        self.not_empty.notify_all();
    }

    /// Entries currently queued across all tenants.
    pub fn len(&self) -> usize {
        self.state.lock().expect("sched lock").total
    }

    /// True when no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bounded-path capacity ([`try_submit`](Self::try_submit) only).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True once [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("sched lock").closed
    }

    /// A point-in-time snapshot of depths, counters, and per-priority
    /// queue-wait aggregates.
    pub fn stats(&self) -> SchedStats {
        let st = self.state.lock().expect("sched lock");
        SchedStats {
            depth: st.total,
            served: st.served,
            preempted: st.preempted,
            tenants: st
                .tenants
                .iter()
                .map(|t| (t.name.clone(), t.weight, t.entries.len()))
                .collect(),
            wait_by_priority: st
                .wait_by_priority
                .iter()
                .map(|(&p, &(n, us))| (p, n, us))
                .collect(),
        }
    }
}

impl<T: Send> WorkSource<T> for Scheduler<T> {
    fn pop_with_obs(&self) -> Option<(T, ucsim_obs::QueueToken)> {
        let mut st = self.state.lock().expect("sched lock");
        loop {
            if let Some(out) = Self::take_next(&mut st) {
                return Some(out);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("sched lock");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn pop<T: Send>(s: &Scheduler<T>) -> Option<T> {
        s.pop_with_obs().map(|(item, _)| item)
    }

    #[test]
    fn fair_share_serves_in_weight_proportion() {
        let s = Scheduler::new(64);
        s.set_weight("a", 1);
        s.set_weight("b", 4);
        for i in 0..20u32 {
            s.enqueue("a", 0, CancelToken::new(), ("a", i)).unwrap();
            s.enqueue("b", 0, CancelToken::new(), ("b", i)).unwrap();
        }
        // Over the first 10 pops, b (weight 4) should get ~4× a's service.
        let first: Vec<&str> = (0..10).map(|_| pop(&s).unwrap().0).collect();
        let b_count = first.iter().filter(|t| **t == "b").count();
        assert!(
            (7..=9).contains(&b_count),
            "weight-4 tenant got {b_count}/10, expected ~8"
        );
        // And nobody starves: both tenants fully drain.
        while pop_nonblocking(&s).is_some() {}
        assert!(s.is_empty());
    }

    fn pop_nonblocking<T: Send>(s: &Scheduler<T>) -> Option<T> {
        s.try_pop()
    }

    #[test]
    fn priority_orders_within_tenant_fifo_within_priority() {
        let s = Scheduler::new(16);
        s.enqueue("t", 0, CancelToken::new(), "low-1").unwrap();
        s.enqueue("t", 5, CancelToken::new(), "high-1").unwrap();
        s.enqueue("t", 0, CancelToken::new(), "low-2").unwrap();
        s.enqueue("t", 5, CancelToken::new(), "high-2").unwrap();
        let order: Vec<&str> = (0..4).map(|_| pop(&s).unwrap()).collect();
        assert_eq!(order, ["high-1", "high-2", "low-1", "low-2"]);
    }

    #[test]
    fn cancelled_entries_are_preempted_before_reaching_a_worker() {
        let s = Scheduler::new(16);
        let doomed = CancelToken::new();
        s.enqueue("t", 0, CancelToken::new(), 1u32).unwrap();
        s.enqueue("t", 9, doomed.clone(), 2).unwrap();
        s.enqueue("t", 0, CancelToken::new(), 3).unwrap();
        doomed.cancel();
        assert_eq!(pop(&s), Some(1));
        assert_eq!(pop(&s), Some(3));
        let stats = s.stats();
        assert_eq!(stats.preempted, 1);
        assert_eq!(stats.served, 2);
        assert!(s.is_empty());
    }

    #[test]
    fn bounded_path_rejects_at_capacity_unbounded_path_never_does() {
        let s = Scheduler::new(2);
        s.try_submit("t", 0, CancelToken::new(), 1u32).unwrap();
        s.try_submit("t", 0, CancelToken::new(), 2).unwrap();
        assert!(matches!(
            s.try_submit("t", 0, CancelToken::new(), 3),
            Err(PushError::Full(3))
        ));
        // Plan cells bypass the interactive bound entirely.
        for i in 10..30u32 {
            s.enqueue("t", 0, CancelToken::new(), i).unwrap();
        }
        assert_eq!(s.len(), 22);
        s.close();
        assert!(matches!(
            s.try_submit("t", 0, CancelToken::new(), 4),
            Err(PushError::Closed(4))
        ));
        assert!(matches!(
            s.enqueue("t", 0, CancelToken::new(), 5),
            Err(PushError::Closed(5))
        ));
        // Closed-but-not-drained still pops, then signals termination.
        let mut drained = 0;
        while pop(&s).is_some() {
            drained += 1;
        }
        assert_eq!(drained, 22);
    }

    #[test]
    fn reactivated_tenant_cannot_bank_credit_while_idle() {
        let s = Scheduler::new(64);
        s.set_weight("busy", 1);
        s.set_weight("idler", 1);
        // `busy` runs alone for a while, advancing its clock.
        for i in 0..8u32 {
            s.enqueue("busy", 0, CancelToken::new(), ("busy", i))
                .unwrap();
        }
        for _ in 0..8 {
            pop(&s).unwrap();
        }
        // Now both backlog equally; `idler` must not monopolize despite
        // having never been charged.
        for i in 0..6u32 {
            s.enqueue("busy", 0, CancelToken::new(), ("busy", i))
                .unwrap();
            s.enqueue("idler", 0, CancelToken::new(), ("idler", i))
                .unwrap();
        }
        let first: Vec<&str> = (0..6).map(|_| pop(&s).unwrap().0).collect();
        let idler = first.iter().filter(|t| **t == "idler").count();
        assert!(
            (2..=4).contains(&idler),
            "re-activated tenant took {idler}/6, expected ~3"
        );
    }

    #[test]
    fn mixed_load_is_starvation_free() {
        // One consumer drains while two producers keep submitting at
        // skewed weights; the light tenant must still finish everything.
        let s = Arc::new(Scheduler::new(1024));
        s.set_weight("heavy", 8);
        s.set_weight("light", 1);
        for i in 0..200u32 {
            s.enqueue("heavy", 1, CancelToken::new(), ("heavy", i))
                .unwrap();
        }
        for i in 0..25u32 {
            s.enqueue("light", 0, CancelToken::new(), ("light", i))
                .unwrap();
        }
        let s2 = Arc::clone(&s);
        let consumer = std::thread::spawn(move || {
            let mut light = 0u32;
            let mut heavy = 0u32;
            while let Some((who, _)) = pop(&s2) {
                match who {
                    "light" => light += 1,
                    _ => heavy += 1,
                }
            }
            (light, heavy)
        });
        // Close once everything is queued; the consumer must drain all of
        // both tenants (no starvation, no loss).
        while !s.is_empty() {
            std::thread::yield_now();
        }
        s.close();
        let (light, heavy) = consumer.join().unwrap();
        assert_eq!(light, 25);
        assert_eq!(heavy, 200);
        let stats = s.stats();
        assert_eq!(stats.served, 225);
        assert_eq!(stats.depth, 0);
        // Wait aggregates recorded under both priorities.
        assert_eq!(stats.wait_by_priority.len(), 2);
        assert_eq!(stats.wait_by_priority[0].0, 0);
        assert_eq!(stats.wait_by_priority[0].1, 25);
        assert_eq!(stats.wait_by_priority[1].1, 200);
    }

    #[test]
    fn stats_report_tenant_depths_and_weights() {
        let s = Scheduler::new(16);
        s.set_weight("a", 3);
        s.enqueue("a", 0, CancelToken::new(), 1u32).unwrap();
        s.enqueue("a", 0, CancelToken::new(), 2).unwrap();
        s.enqueue("b", 0, CancelToken::new(), 3).unwrap();
        let stats = s.stats();
        assert_eq!(stats.depth, 3);
        let a = stats.tenants.iter().find(|t| t.0 == "a").unwrap();
        assert_eq!((a.1, a.2), (3, 2));
        let b = stats.tenants.iter().find(|t| t.0 == "b").unwrap();
        assert_eq!((b.1, b.2), (1, 1));
    }
}

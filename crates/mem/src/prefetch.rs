//! Branch-prediction-directed instruction prefetching.
//!
//! Table I: "L1-I: branch prediction directed prefetcher". In a decoupled
//! front end the branch predictor runs ahead of fetch, so the stream of
//! predicted PW start addresses is a natural prefetch feed (fetch-directed
//! instruction prefetching, Reinman et al.). The prefetcher watches PW
//! addresses as they are pushed into the PW queue and prefetches their
//! I-cache lines (plus `depth` sequential next lines) before the fetch
//! stage consumes them.

use ucsim_model::LineAddr;
use ucsim_model::{FromJson, ToJson};

use crate::MemoryHierarchy;

/// Counters for the prefetcher.
#[derive(Debug, Clone, Copy, Default, ToJson, FromJson)]
pub struct PrefetcherStats {
    /// PW addresses observed.
    pub observed: u64,
    /// Prefetches issued (missing in L1-I at observation time).
    pub issued: u64,
    /// Observations skipped because the line was already resident.
    pub already_resident: u64,
}

/// Fetch-directed prefetcher state.
///
/// # Example
///
/// ```
/// use ucsim_mem::{FetchDirectedPrefetcher, MemoryHierarchy};
/// use ucsim_model::Addr;
///
/// let mut mem = MemoryHierarchy::new(Default::default());
/// let mut pf = FetchDirectedPrefetcher::new(1);
/// pf.observe_pw(Addr::new(0x2000).line(), &mut mem);
/// assert!(mem.l1i_probe(Addr::new(0x2000).line()));
/// assert!(mem.l1i_probe(Addr::new(0x2040).line())); // next-line depth 1
/// ```
#[derive(Debug, Clone)]
pub struct FetchDirectedPrefetcher {
    depth: u32,
    stats: PrefetcherStats,
}

impl FetchDirectedPrefetcher {
    /// Creates a prefetcher that also fetches `depth` sequential lines past
    /// each observed PW line (0 = only the PW line itself).
    pub fn new(depth: u32) -> Self {
        FetchDirectedPrefetcher {
            depth,
            stats: PrefetcherStats::default(),
        }
    }

    /// Observes a predicted PW start line and prefetches it (and its
    /// sequential successors) into the L1-I.
    pub fn observe_pw(&mut self, line: LineAddr, mem: &mut MemoryHierarchy) {
        self.stats.observed += 1;
        let mut l = line;
        for i in 0..=self.depth {
            if mem.prefetch_inst(l) {
                self.stats.issued += 1;
            } else if i == 0 {
                self.stats.already_resident += 1;
            }
            l = l.next();
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> PrefetcherStats {
        self.stats
    }

    /// Resets counters.
    pub fn reset_stats(&mut self) {
        self.stats = PrefetcherStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessKind;
    use ucsim_model::Addr;

    #[test]
    fn prefetch_turns_miss_into_hit() {
        let mut mem = MemoryHierarchy::new(Default::default());
        let mut pf = FetchDirectedPrefetcher::new(0);
        let line = Addr::new(0x8000).line();
        pf.observe_pw(line, &mut mem);
        assert_eq!(mem.access(AccessKind::Fetch, line), mem.config().l1_latency);
        assert_eq!(pf.stats().issued, 1);
    }

    #[test]
    fn depth_covers_sequential_lines() {
        let mut mem = MemoryHierarchy::new(Default::default());
        let mut pf = FetchDirectedPrefetcher::new(2);
        let line = Addr::new(0x8000).line();
        pf.observe_pw(line, &mut mem);
        assert!(mem.l1i_probe(line));
        assert!(mem.l1i_probe(line.next()));
        assert!(mem.l1i_probe(line.next().next()));
        assert!(!mem.l1i_probe(line.next().next().next()));
    }

    #[test]
    fn resident_lines_not_reissued() {
        let mut mem = MemoryHierarchy::new(Default::default());
        let mut pf = FetchDirectedPrefetcher::new(0);
        let line = Addr::new(0x8000).line();
        pf.observe_pw(line, &mut mem);
        pf.observe_pw(line, &mut mem);
        let s = pf.stats();
        assert_eq!(s.observed, 2);
        assert_eq!(s.issued, 1);
        assert_eq!(s.already_resident, 1);
    }
}

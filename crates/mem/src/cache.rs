//! Generic set-associative cache over 64-byte lines.

use ucsim_model::LineAddr;
use ucsim_model::{FromJson, ToJson};

use crate::{ReplacementPolicy, ReplacementState};

/// Static geometry and policy of one cache level.
#[derive(Debug, Clone, ToJson, FromJson)]
pub struct CacheConfig {
    /// Human-readable name ("L1I", "L2", ...).
    pub name: String,
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl CacheConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or `ways == 0`.
    pub fn new(name: &str, sets: usize, ways: usize, policy: ReplacementPolicy) -> Self {
        assert!(sets.is_power_of_two(), "sets must be a power of two");
        assert!(ways > 0, "ways must be positive");
        CacheConfig {
            name: name.to_owned(),
            sets,
            ways,
            policy,
        }
    }

    /// Capacity in bytes (64-byte lines).
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * 64
    }
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, ToJson, FromJson)]
pub struct CacheStats {
    /// Demand accesses.
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Lines filled (demand + prefetch).
    pub fills: u64,
    /// Fills that evicted a valid line.
    pub evictions: u64,
    /// Prefetch fills.
    pub prefetch_fills: u64,
    /// Invalidation probes that removed a line.
    pub invalidations: u64,
}

impl CacheStats {
    /// Demand misses.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Demand hit rate in `[0,1]` (1.0 when never accessed).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache of 64-byte lines (tags only; the simulator never
/// stores data bytes).
///
/// # Example
///
/// ```
/// use ucsim_mem::{Cache, CacheConfig, ReplacementPolicy};
/// use ucsim_model::Addr;
///
/// let mut c = Cache::new(CacheConfig::new("L1D", 64, 4, ReplacementPolicy::Lru));
/// let line = Addr::new(0x1234_5678).line();
/// assert!(!c.access(line));
/// c.fill(line);
/// assert!(c.access(line));
/// assert_eq!(c.stats().misses(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// Flat `sets × ways` tag store of line *numbers* ([`INVALID_TAG`] when
    /// empty). One contiguous array keeps a whole set's scan inside one or
    /// two hardware cache lines; the nested-`Vec`-of-`Option` layout this
    /// replaces cost a pointer chase plus 16-byte compares per way on the
    /// hottest path in the simulator.
    tags: Vec<u64>,
    repl: Vec<ReplacementState>,
    stats: CacheStats,
    /// Reusable victim-selection buffer; fills happen on every miss in
    /// every level, so the valid-way snapshot must not allocate.
    valid_scratch: Vec<bool>,
}

/// Tag value marking an empty way. Line numbers are addresses shifted right
/// by 6, so no reachable line can collide with it.
const INVALID_TAG: u64 = u64::MAX;

impl Cache {
    /// Creates an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let tags = vec![INVALID_TAG; cfg.sets * cfg.ways];
        let repl = (0..cfg.sets)
            .map(|_| ReplacementState::new(cfg.policy, cfg.ways))
            .collect();
        Cache {
            valid_scratch: Vec::with_capacity(cfg.ways),
            cfg,
            tags,
            repl,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets counters (not contents) — used at the warmup/measure boundary.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.number() as usize) & (self.cfg.sets - 1)
    }

    /// The contiguous tag slice of `set`.
    #[inline]
    fn set_tags(&self, set: usize) -> &[u64] {
        &self.tags[set * self.cfg.ways..(set + 1) * self.cfg.ways]
    }

    /// Demand access: returns `true` on hit and updates replacement state.
    #[inline]
    pub fn access(&mut self, line: LineAddr) -> bool {
        self.stats.accesses += 1;
        let tag = line.number();
        let set = self.set_of(line);
        if let Some(way) = self.set_tags(set).iter().position(|&t| t == tag) {
            self.stats.hits += 1;
            self.repl[set].on_hit(way);
            true
        } else {
            false
        }
    }

    /// Non-updating lookup.
    #[inline]
    pub fn probe(&self, line: LineAddr) -> bool {
        self.set_tags(self.set_of(line)).contains(&line.number())
    }

    /// Fills `line`, returning the evicted line if a valid one was displaced.
    ///
    /// Filling an already-present line refreshes its replacement state and
    /// evicts nothing.
    pub fn fill(&mut self, line: LineAddr) -> Option<LineAddr> {
        self.fill_inner(line, false)
    }

    /// Prefetch fill (tracked separately in the stats).
    pub fn prefetch_fill(&mut self, line: LineAddr) -> Option<LineAddr> {
        self.fill_inner(line, true)
    }

    fn fill_inner(&mut self, line: LineAddr, prefetch: bool) -> Option<LineAddr> {
        let tag = line.number();
        debug_assert_ne!(tag, INVALID_TAG, "line number collides with sentinel");
        let set = self.set_of(line);
        if let Some(way) = self.set_tags(set).iter().position(|&t| t == tag) {
            // Already resident (e.g. race between demand and prefetch).
            self.repl[set].on_fill(way);
            return None;
        }
        let mut valid = std::mem::take(&mut self.valid_scratch);
        valid.clear();
        valid.extend(self.set_tags(set).iter().map(|&t| t != INVALID_TAG));
        let way = self.repl[set].victim(&valid);
        self.valid_scratch = valid;
        let slot = &mut self.tags[set * self.cfg.ways + way];
        let evicted = (*slot != INVALID_TAG).then(|| LineAddr::from_line_number(*slot));
        *slot = tag;
        self.repl[set].on_fill(way);
        self.stats.fills += 1;
        if prefetch {
            self.stats.prefetch_fills += 1;
        }
        if evicted.is_some() {
            self.stats.evictions += 1;
        }
        evicted
    }

    /// Invalidates `line` if present; returns whether it was.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let tag = line.number();
        let set = self.set_of(line);
        if let Some(way) = self.set_tags(set).iter().position(|&t| t == tag) {
            self.tags[set * self.cfg.ways + way] = INVALID_TAG;
            self.stats.invalidations += 1;
            true
        } else {
            false
        }
    }

    /// Number of currently valid lines (test/diagnostic helper).
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t != INVALID_TAG).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    fn small() -> Cache {
        Cache::new(CacheConfig::new("t", 4, 2, ReplacementPolicy::Lru))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(!c.access(line(5)));
        c.fill(line(5));
        assert!(c.access(line(5)));
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn conflict_eviction_lru_order() {
        let mut c = small(); // 4 sets → lines 0,4,8 share set 0; 2 ways
        c.fill(line(0));
        c.fill(line(4));
        c.access(line(0)); // 0 MRU, 4 LRU
        let ev = c.fill(line(8));
        assert_eq!(ev, Some(line(4)));
        assert!(c.probe(line(0)));
        assert!(c.probe(line(8)));
    }

    #[test]
    fn refill_resident_is_noop() {
        let mut c = small();
        c.fill(line(3));
        assert_eq!(c.fill(line(3)), None);
        assert_eq!(c.resident_lines(), 1);
        assert_eq!(c.stats().fills, 1);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        c.fill(line(7));
        assert!(c.invalidate(line(7)));
        assert!(!c.invalidate(line(7)));
        assert!(!c.probe(line(7)));
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn prefetch_counted_separately() {
        let mut c = small();
        c.prefetch_fill(line(1));
        c.fill(line(2));
        assert_eq!(c.stats().fills, 2);
        assert_eq!(c.stats().prefetch_fills, 1);
    }

    #[test]
    fn capacity_bytes() {
        let cfg = CacheConfig::new("L1I", 64, 8, ReplacementPolicy::Lru);
        assert_eq!(cfg.capacity_bytes(), 32 * 1024);
    }

    #[test]
    fn hit_rate_edges() {
        let c = small();
        assert_eq!(c.stats().hit_rate(), 1.0);
        let mut c = small();
        c.access(line(0));
        assert_eq!(c.stats().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_sets() {
        let _ = CacheConfig::new("x", 3, 2, ReplacementPolicy::Lru);
    }

    #[test]
    fn sets_are_isolated() {
        let mut c = small();
        // Fill set 0 far beyond capacity; set 1 lines must survive.
        c.fill(line(1));
        for i in 0..32 {
            c.fill(line(i * 4));
        }
        assert!(c.probe(line(1)));
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = small();
        c.fill(line(9));
        c.access(line(9));
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.probe(line(9)));
    }
}

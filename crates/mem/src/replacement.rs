//! Replacement policies for set-associative structures.
//!
//! Table I of the paper prescribes true LRU for the L1/L2 and uop cache and
//! RRIP for the L3. Tree-PLRU is included for ablation studies.

use ucsim_model::{FromJson, ToJson};

/// Which replacement policy a cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, ToJson, FromJson, Default)]
pub enum ReplacementPolicy {
    /// True least-recently-used (per-way timestamps).
    #[default]
    Lru,
    /// Tree pseudo-LRU (one bit per internal node).
    TreePlru,
    /// Static RRIP (2-bit re-reference interval prediction, hit-promotion).
    Srrip,
}

/// Per-set replacement state for any [`ReplacementPolicy`].
///
/// The same state machine drives the I/D caches and (via `ucsim-uopcache`)
/// the uop cache's per-line replacement, so the paper's "replacement state
/// per line, independent of the number of compacted uop cache entries"
/// (Section V-B) reuses this type directly.
///
/// # Example
///
/// ```
/// use ucsim_mem::{ReplacementPolicy, ReplacementState};
/// let mut r = ReplacementState::new(ReplacementPolicy::Lru, 4);
/// r.on_fill(0); r.on_fill(1); r.on_fill(2); r.on_fill(3);
/// r.on_hit(0); // 0 is now MRU
/// assert_eq!(r.victim(&[true, true, true, true]), 1);
/// assert_eq!(r.mru(&[true; 4]), Some(0));
/// ```
#[derive(Debug, Clone)]
pub struct ReplacementState {
    policy: ReplacementPolicy,
    ways: usize,
    /// LRU: logical timestamps. SRRIP: RRPV values. TreePLRU: unused.
    meta: Vec<u64>,
    /// TreePLRU internal node bits (ways-1 nodes for power-of-two ways).
    tree: Vec<bool>,
    clock: u64,
}

impl ReplacementState {
    /// Creates state for a set with `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways == 0`, or if `TreePlru` is requested with a
    /// non-power-of-two way count.
    pub fn new(policy: ReplacementPolicy, ways: usize) -> Self {
        assert!(ways > 0, "a set needs at least one way");
        if policy == ReplacementPolicy::TreePlru {
            assert!(ways.is_power_of_two(), "tree-PLRU needs power-of-two ways");
        }
        let init = match policy {
            ReplacementPolicy::Srrip => 3, // distant re-reference
            _ => 0,
        };
        ReplacementState {
            policy,
            ways,
            meta: vec![init; ways],
            tree: vec![false; ways.saturating_sub(1)],
            clock: 0,
        }
    }

    /// Number of ways this state covers.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Notes a hit on `way`.
    pub fn on_hit(&mut self, way: usize) {
        self.touch(way, true);
    }

    /// Notes a fill into `way`.
    pub fn on_fill(&mut self, way: usize) {
        self.touch(way, false);
    }

    fn touch(&mut self, way: usize, hit: bool) {
        assert!(way < self.ways, "way {way} out of range {}", self.ways);
        match self.policy {
            ReplacementPolicy::Lru => {
                self.clock += 1;
                self.meta[way] = self.clock;
            }
            ReplacementPolicy::TreePlru => {
                // Flip internal nodes to point away from `way`.
                let mut idx = 0usize;
                let mut lo = 0usize;
                let mut hi = self.ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let right = way >= mid;
                    self.tree[idx] = !right; // point away
                    idx = 2 * idx + if right { 2 } else { 1 };
                    if right {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
            }
            ReplacementPolicy::Srrip => {
                // Hit promotion to RRPV 0; fills insert at RRPV 2.
                self.meta[way] = if hit { 0 } else { 2 };
            }
        }
    }

    /// Chooses a victim way. Invalid ways (per `valid`) win immediately.
    ///
    /// # Panics
    ///
    /// Panics if `valid.len() != ways`.
    pub fn victim(&mut self, valid: &[bool]) -> usize {
        assert_eq!(valid.len(), self.ways, "valid mask length mismatch");
        if let Some(w) = valid.iter().position(|v| !v) {
            return w;
        }
        match self.policy {
            ReplacementPolicy::Lru => self
                .meta
                .iter()
                .enumerate()
                .min_by_key(|&(_, &t)| t)
                .map(|(w, _)| w)
                .expect("ways > 0"),
            ReplacementPolicy::TreePlru => {
                let mut idx = 0usize;
                let mut lo = 0usize;
                let mut hi = self.ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let right = self.tree.get(idx).copied().unwrap_or(false);
                    idx = 2 * idx + if right { 2 } else { 1 };
                    if right {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                lo
            }
            ReplacementPolicy::Srrip => {
                // Age until something reaches RRPV 3.
                loop {
                    if let Some((w, _)) = self.meta.iter().enumerate().find(|&(_, &v)| v >= 3) {
                        return w;
                    }
                    for v in &mut self.meta {
                        *v += 1;
                    }
                }
            }
        }
    }

    /// Returns the most-recently-used valid way (LRU policy only gives an
    /// exact answer; PLRU/SRRIP return a best-effort MRU).
    ///
    /// RAC compaction (paper Section V-B1) targets the MRU line.
    pub fn mru(&self, valid: &[bool]) -> Option<usize> {
        assert_eq!(valid.len(), self.ways, "valid mask length mismatch");
        match self.policy {
            ReplacementPolicy::Lru => self
                .meta
                .iter()
                .enumerate()
                .filter(|&(w, _)| valid[w])
                .max_by_key(|&(_, &t)| t)
                .map(|(w, _)| w),
            ReplacementPolicy::Srrip => self
                .meta
                .iter()
                .enumerate()
                .filter(|&(w, _)| valid[w])
                .min_by_key(|&(_, &v)| v)
                .map(|(w, _)| w),
            ReplacementPolicy::TreePlru => {
                // Walk *with* the tree bits: they point at the PLRU victim,
                // so the opposite path approximates the MRU.
                let mut lo = 0usize;
                let mut hi = self.ways;
                let mut idx = 0usize;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let right = !self.tree.get(idx).copied().unwrap_or(false);
                    idx = 2 * idx + if right { 2 } else { 1 };
                    if right {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                valid[lo].then_some(lo)
            }
        }
    }

    /// Ranks valid ways from most- to least-recently used (LRU exact;
    /// other policies approximate). Used by RAC to try compaction targets
    /// in recency order.
    pub fn recency_order(&self, valid: &[bool]) -> Vec<usize> {
        let mut ways = Vec::with_capacity(self.ways);
        self.recency_order_into(valid, &mut ways);
        ways
    }

    /// [`Self::recency_order`] into a caller-provided buffer (cleared
    /// first) — the fill hot path reuses one buffer across fills instead
    /// of allocating per fill.
    pub fn recency_order_into(&self, valid: &[bool], out: &mut Vec<usize>) {
        assert_eq!(valid.len(), self.ways, "valid mask length mismatch");
        out.clear();
        out.extend((0..self.ways).filter(|&w| valid[w]));
        match self.policy {
            ReplacementPolicy::Lru => out.sort_by_key(|&w| std::cmp::Reverse(self.meta[w])),
            ReplacementPolicy::Srrip => out.sort_by_key(|&w| self.meta[w]),
            ReplacementPolicy::TreePlru => {} // arbitrary order
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_victim_is_oldest() {
        let mut r = ReplacementState::new(ReplacementPolicy::Lru, 4);
        for w in 0..4 {
            r.on_fill(w);
        }
        r.on_hit(0);
        r.on_hit(2);
        assert_eq!(r.victim(&[true; 4]), 1);
    }

    #[test]
    fn invalid_way_preferred() {
        let mut r = ReplacementState::new(ReplacementPolicy::Lru, 4);
        r.on_fill(0);
        assert_eq!(r.victim(&[true, false, true, true]), 1);
    }

    #[test]
    fn lru_full_cycle() {
        let mut r = ReplacementState::new(ReplacementPolicy::Lru, 2);
        r.on_fill(0);
        r.on_fill(1);
        assert_eq!(r.victim(&[true, true]), 0);
        r.on_hit(0);
        assert_eq!(r.victim(&[true, true]), 1);
    }

    #[test]
    fn plru_never_victimizes_just_touched() {
        let mut r = ReplacementState::new(ReplacementPolicy::TreePlru, 8);
        for w in 0..8 {
            r.on_fill(w);
        }
        for w in 0..8 {
            r.on_hit(w);
            assert_ne!(r.victim(&[true; 8]), w, "victim == just-touched way {w}");
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_non_pow2() {
        let _ = ReplacementState::new(ReplacementPolicy::TreePlru, 6);
    }

    #[test]
    fn srrip_promotes_on_hit() {
        let mut r = ReplacementState::new(ReplacementPolicy::Srrip, 2);
        r.on_fill(0);
        r.on_fill(1);
        r.on_hit(0);
        // way 1 (RRPV 2) should age out before way 0 (RRPV 0).
        assert_eq!(r.victim(&[true, true]), 1);
    }

    #[test]
    fn mru_tracks_hits() {
        let mut r = ReplacementState::new(ReplacementPolicy::Lru, 4);
        for w in 0..4 {
            r.on_fill(w);
        }
        r.on_hit(2);
        assert_eq!(r.mru(&[true; 4]), Some(2));
        // Only-valid filtering works.
        assert_eq!(r.mru(&[true, false, false, false]), Some(0));
    }

    #[test]
    fn recency_order_lru_exact() {
        let mut r = ReplacementState::new(ReplacementPolicy::Lru, 4);
        for w in 0..4 {
            r.on_fill(w);
        }
        r.on_hit(1);
        r.on_hit(3);
        assert_eq!(r.recency_order(&[true; 4]), vec![3, 1, 2, 0]);
    }

    #[test]
    fn mru_empty_set() {
        let r = ReplacementState::new(ReplacementPolicy::Lru, 2);
        assert_eq!(r.mru(&[false, false]), None);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn rejects_zero_ways() {
        let _ = ReplacementState::new(ReplacementPolicy::Lru, 0);
    }
}

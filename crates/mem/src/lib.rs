//! # ucsim-mem
//!
//! Memory-hierarchy substrate for the uop cache study: generic
//! set-associative caches with pluggable replacement (true LRU, tree-PLRU,
//! SRRIP), the three-level cache hierarchy of the paper's Table I, a DRAM
//! latency model and a branch-prediction-directed instruction prefetcher.
//!
//! The uop cache itself is *not* here — it has enough bespoke behaviour
//! (byte-accounted entries, compaction, PW tags) to deserve its own crate
//! (`ucsim-uopcache`). This crate serves the I-cache / D-side hierarchy.
//!
//! # Example
//!
//! ```
//! use ucsim_mem::{Cache, CacheConfig, ReplacementPolicy};
//! use ucsim_model::Addr;
//!
//! // 32 KB, 8-way, 64 B lines: the paper's L1-I.
//! let mut l1i = Cache::new(CacheConfig::new("L1I", 64, 8, ReplacementPolicy::Lru));
//! let line = Addr::new(0x4000).line();
//! assert!(!l1i.access(line));     // cold miss
//! l1i.fill(line);
//! assert!(l1i.access(line));      // hit
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod hierarchy;
mod prefetch;
mod replacement;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{AccessKind, HierarchyConfig, HierarchyStats, MemoryHierarchy};
pub use prefetch::{FetchDirectedPrefetcher, PrefetcherStats};
pub use replacement::{ReplacementPolicy, ReplacementState};

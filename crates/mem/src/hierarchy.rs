//! The three-level cache hierarchy + DRAM of the paper's Table I.
//!
//! * L1-I: 32 KB, 8-way, LRU (accessed by the front end).
//! * L1-D: 32 KB, 4-way, LRU.
//! * L2: 512 KB private unified, 8-way, LRU.
//! * L3: 2 MB shared, 16-way, RRIP.
//! * Off-chip DRAM: fixed-latency model of a 2400 MHz channel.
//!
//! The hierarchy returns *latencies*; the pipeline turns them into stalls.

use ucsim_model::LineAddr;
use ucsim_model::{FromJson, ToJson};

use crate::{Cache, CacheConfig, CacheStats, ReplacementPolicy};

/// Which side of the core an access comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch (enters at L1-I).
    Fetch,
    /// Data load/store (enters at L1-D).
    Data,
}

/// Latency parameters (cycles at the 3 GHz core clock of Table I).
#[derive(Debug, Clone, ToJson, FromJson)]
pub struct HierarchyConfig {
    /// L1 (I or D) hit latency.
    pub l1_latency: u32,
    /// L2 hit latency.
    pub l2_latency: u32,
    /// L3 hit latency.
    pub l3_latency: u32,
    /// DRAM access latency (2400 MHz DDR4 ≈ 50–60 ns ⇒ ~160 core cycles).
    pub dram_latency: u32,
    /// L1-I geometry.
    pub l1i: CacheConfig,
    /// L1-D geometry.
    pub l1d: CacheConfig,
    /// L2 geometry.
    pub l2: CacheConfig,
    /// L3 geometry.
    pub l3: CacheConfig,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1_latency: 3,
            l2_latency: 12,
            l3_latency: 38,
            dram_latency: 160,
            // 32 KB / 64 B / 8 ways = 64 sets.
            l1i: CacheConfig::new("L1I", 64, 8, ReplacementPolicy::Lru),
            // 32 KB / 64 B / 4 ways = 128 sets.
            l1d: CacheConfig::new("L1D", 128, 4, ReplacementPolicy::Lru),
            // 512 KB / 64 B / 8 ways = 1024 sets.
            l2: CacheConfig::new("L2", 1024, 8, ReplacementPolicy::Lru),
            // 2 MB / 64 B / 16 ways = 2048 sets.
            l3: CacheConfig::new("L3", 2048, 16, ReplacementPolicy::Srrip),
        }
    }
}

/// Aggregated per-level statistics snapshot.
#[derive(Debug, Clone, Copy, Default, ToJson, FromJson)]
pub struct HierarchyStats {
    /// L1-I counters.
    pub l1i: CacheStats,
    /// L1-D counters.
    pub l1d: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// L3 counters.
    pub l3: CacheStats,
    /// Number of DRAM accesses.
    pub dram_accesses: u64,
}

/// The assembled hierarchy.
///
/// # Example
///
/// ```
/// use ucsim_mem::{AccessKind, MemoryHierarchy};
/// use ucsim_model::Addr;
///
/// let mut mem = MemoryHierarchy::new(Default::default());
/// let line = Addr::new(0x9000).line();
/// let cold = mem.access(AccessKind::Fetch, line);
/// let warm = mem.access(AccessKind::Fetch, line);
/// assert!(cold > warm); // first access missed all the way to DRAM
/// ```
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    cfg: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    dram_accesses: u64,
}

impl MemoryHierarchy {
    /// Builds an empty hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        MemoryHierarchy {
            l1i: Cache::new(cfg.l1i.clone()),
            l1d: Cache::new(cfg.l1d.clone()),
            l2: Cache::new(cfg.l2.clone()),
            l3: Cache::new(cfg.l3.clone()),
            cfg,
            dram_accesses: 0,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Performs a demand access and returns its total latency in cycles,
    /// filling all levels on the way back (non-inclusive, fill-on-miss).
    pub fn access(&mut self, kind: AccessKind, line: LineAddr) -> u32 {
        let l1 = match kind {
            AccessKind::Fetch => &mut self.l1i,
            AccessKind::Data => &mut self.l1d,
        };
        if l1.access(line) {
            return self.cfg.l1_latency;
        }
        if self.l2.access(line) {
            self.l1_for(kind).fill(line);
            return self.cfg.l2_latency;
        }
        if self.l3.access(line) {
            self.l2.fill(line);
            self.l1_for(kind).fill(line);
            return self.cfg.l3_latency;
        }
        self.dram_accesses += 1;
        self.l3.fill(line);
        self.l2.fill(line);
        self.l1_for(kind).fill(line);
        self.cfg.dram_latency
    }

    fn l1_for(&mut self, kind: AccessKind) -> &mut Cache {
        match kind {
            AccessKind::Fetch => &mut self.l1i,
            AccessKind::Data => &mut self.l1d,
        }
    }

    /// Non-updating L1-I presence check (used by the prefetcher).
    pub fn l1i_probe(&self, line: LineAddr) -> bool {
        self.l1i.probe(line)
    }

    /// Prefetches `line` into the L1-I (and L2 if absent), charging no
    /// demand latency. Returns `true` if a fill actually happened.
    pub fn prefetch_inst(&mut self, line: LineAddr) -> bool {
        if self.l1i.probe(line) {
            return false;
        }
        if !self.l2.probe(line) {
            self.l2.prefetch_fill(line);
        }
        self.l1i.prefetch_fill(line);
        true
    }

    /// Invalidates an instruction line everywhere (self-modifying-code
    /// probe support; the uop cache's own probe lives in `ucsim-uopcache`).
    pub fn invalidate_inst(&mut self, line: LineAddr) {
        self.l1i.invalidate(line);
        self.l2.invalidate(line);
        self.l3.invalidate(line);
    }

    /// Snapshot of all counters.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: *self.l1i.stats(),
            l1d: *self.l1d.stats(),
            l2: *self.l2.stats(),
            l3: *self.l3.stats(),
            dram_accesses: self.dram_accesses,
        }
    }

    /// Resets all counters (not contents).
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.l3.reset_stats();
        self.dram_accesses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_line_number(n)
    }

    #[test]
    fn latency_ladder() {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        let cfg = mem.config().clone();
        // Cold: DRAM.
        assert_eq!(mem.access(AccessKind::Fetch, line(1)), cfg.dram_latency);
        // Warm L1.
        assert_eq!(mem.access(AccessKind::Fetch, line(1)), cfg.l1_latency);
    }

    #[test]
    fn l2_backstop_after_l1_eviction() {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        mem.access(AccessKind::Fetch, line(1));
        // Blow the (64-set, 8-way) L1I set 1 with 9 conflicting lines.
        for i in 1..=9 {
            mem.access(AccessKind::Fetch, line(1 + i * 64));
        }
        let lat = mem.access(AccessKind::Fetch, line(1));
        assert_eq!(lat, mem.config().l2_latency);
    }

    #[test]
    fn fetch_and_data_do_not_share_l1() {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        mem.access(AccessKind::Fetch, line(5));
        // Data access to the same line misses L1D but hits L2.
        assert_eq!(
            mem.access(AccessKind::Data, line(5)),
            mem.config().l2_latency
        );
    }

    #[test]
    fn prefetch_hides_latency() {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        assert!(mem.prefetch_inst(line(9)));
        assert!(!mem.prefetch_inst(line(9)));
        assert_eq!(
            mem.access(AccessKind::Fetch, line(9)),
            mem.config().l1_latency
        );
    }

    #[test]
    fn invalidation_forces_refetch() {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        mem.access(AccessKind::Fetch, line(2));
        mem.invalidate_inst(line(2));
        assert_eq!(
            mem.access(AccessKind::Fetch, line(2)),
            mem.config().dram_latency
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut mem = MemoryHierarchy::new(HierarchyConfig::default());
        mem.access(AccessKind::Fetch, line(3));
        mem.access(AccessKind::Fetch, line(3));
        let s = mem.stats();
        assert_eq!(s.l1i.accesses, 2);
        assert_eq!(s.l1i.hits, 1);
        assert_eq!(s.dram_accesses, 1);
    }

    #[test]
    fn table1_geometries() {
        let cfg = HierarchyConfig::default();
        assert_eq!(cfg.l1i.capacity_bytes(), 32 * 1024);
        assert_eq!(cfg.l1d.capacity_bytes(), 32 * 1024);
        assert_eq!(cfg.l2.capacity_bytes(), 512 * 1024);
        assert_eq!(cfg.l3.capacity_bytes(), 2 * 1024 * 1024);
        assert_eq!(cfg.l1i.ways, 8);
        assert_eq!(cfg.l1d.ways, 4);
        assert_eq!(cfg.l2.ways, 8);
        assert_eq!(cfg.l3.ways, 16);
        assert_eq!(cfg.l3.policy, ReplacementPolicy::Srrip);
    }
}

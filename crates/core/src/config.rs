//! Uop cache geometry and policy configuration.

use ucsim_mem::ReplacementPolicy;
use ucsim_model::{FromJson, ToJson};

/// Which compaction allocation policy the cache uses (paper Section V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, ToJson, FromJson)]
pub enum CompactionPolicy {
    /// No compaction: one entry per line (baseline / CLASP-only).
    None,
    /// Replacement-Aware Compaction: compact into the most recently used
    /// line with room.
    Rac,
    /// Prediction-Window-Aware Compaction: prefer a line already holding
    /// an entry of the same PW; fall back to RAC.
    Pwac,
    /// Forced PWAC: when the same-PW entry is stuck in a line with foreign
    /// entries and no room, evict the foreigners to the LRU line and unite
    /// the PW's entries; falls back to PWAC → RAC.
    Fpwac,
}

impl CompactionPolicy {
    /// True if any compaction is enabled.
    pub const fn enabled(self) -> bool {
        !matches!(self, CompactionPolicy::None)
    }
}

/// How a fill was placed (recorded per compacted entry; Figure 19).
#[derive(Debug, Clone, Copy, PartialEq, Eq, ToJson, FromJson)]
pub enum PlacementKind {
    /// Allocated a fresh (or victimized) line of its own.
    NewLine,
    /// Compacted by RAC.
    Rac,
    /// Compacted by PWAC.
    Pwac,
    /// Compacted by the forced F-PWAC move.
    Fpwac,
}

/// Full uop cache configuration.
///
/// The paper's baseline (Table I): 32 sets × 8 ways, 64-byte lines,
/// 56-bit uops, max 8 uops / 4 imm-disp fields / 4 micro-coded insts per
/// entry ⇒ a 2K-uop capacity. The capacity sweeps scale `sets`.
#[derive(Debug, Clone, PartialEq, ToJson, FromJson)]
pub struct UopCacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Physical line size in bytes.
    pub line_bytes: u32,
    /// Per-line error-protection field ("ctr", paper Figure 11).
    pub ctr_bytes: u32,
    /// Maximum uops per entry.
    pub max_uops_per_entry: u32,
    /// Maximum immediate/displacement fields per entry.
    pub max_imm_disp_per_entry: u32,
    /// Maximum micro-coded instructions per entry.
    pub max_ucoded_per_entry: u32,
    /// Maximum entries compacted into one line (1 = no compaction).
    pub max_entries_per_line: u32,
    /// CLASP: allow entries to span sequential I-cache lines.
    pub clasp: bool,
    /// Maximum I-cache lines a CLASP entry may span.
    pub clasp_max_lines: u32,
    /// Compaction allocation policy.
    pub compaction: CompactionPolicy,
    /// Per-line replacement policy (Table I: true LRU; others for
    /// ablation studies).
    pub replacement: ReplacementPolicy,
    /// Build-rule ablation: terminate entries at prediction-window
    /// boundaries instead of letting them span sequential PWs. The
    /// paper's baseline spans PWs (Section II-B2); terminating yields
    /// smaller entries, which raises the compaction rate at the cost of
    /// lower per-entry dispatch bandwidth.
    pub terminate_at_pw_end: bool,
}

impl UopCacheConfig {
    /// The paper's 2K-uop baseline.
    pub fn baseline_2k() -> Self {
        UopCacheConfig {
            sets: 32,
            ways: 8,
            line_bytes: 64,
            ctr_bytes: 2,
            max_uops_per_entry: 8,
            max_imm_disp_per_entry: 4,
            max_ucoded_per_entry: 4,
            max_entries_per_line: 1,
            clasp: false,
            clasp_max_lines: 2,
            compaction: CompactionPolicy::None,
            replacement: ReplacementPolicy::Lru,
            terminate_at_pw_end: false,
        }
    }

    /// A baseline scaled to hold `uops` uops (2K/4K/.../64K in the paper's
    /// Figures 3–4); capacity scales by set count at fixed associativity.
    ///
    /// # Panics
    ///
    /// Panics if `uops` is not a positive multiple of `ways *
    /// max_uops_per_entry` rounding to a power-of-two set count.
    pub fn baseline_with_capacity(uops: usize) -> Self {
        let base = Self::baseline_2k();
        let per_set = base.ways * base.max_uops_per_entry as usize;
        assert!(uops >= per_set, "capacity below one set");
        let sets = uops / per_set;
        assert!(
            sets.is_power_of_two(),
            "capacity must give power-of-two sets"
        );
        UopCacheConfig { sets, ..base }
    }

    /// Builder-style: terminate entries at PW boundaries (ablation).
    pub fn with_pw_end_termination(mut self) -> Self {
        self.terminate_at_pw_end = true;
        self
    }

    /// Builder-style: set the per-line replacement policy (ablation).
    pub fn with_replacement(mut self, policy: ReplacementPolicy) -> Self {
        self.replacement = policy;
        self
    }

    /// Builder-style: enable CLASP.
    pub fn with_clasp(mut self) -> Self {
        self.clasp = true;
        self
    }

    /// Builder-style: enable compaction with the given policy and per-line
    /// entry bound (paper default 2, sensitivity study 3). Compaction in
    /// the paper's evaluation always runs on top of CLASP; this helper
    /// enables both.
    pub fn with_compaction(mut self, policy: CompactionPolicy, max_entries: u32) -> Self {
        assert!(max_entries >= 2, "compaction needs >= 2 entries per line");
        self.compaction = policy;
        self.max_entries_per_line = max_entries;
        self.clasp = true;
        self
    }

    /// Nominal capacity in uops.
    pub fn capacity_uops(&self) -> usize {
        self.sets * self.ways * self.max_uops_per_entry as usize
    }

    /// Byte budget available to entries in one line.
    pub fn entry_byte_budget(&self) -> u32 {
        self.line_bytes - self.ctr_bytes
    }

    /// Checks invariants.
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent configuration.
    pub fn validate(&self) {
        assert!(self.sets.is_power_of_two(), "sets must be a power of two");
        assert!(self.ways > 0);
        assert!(self.ctr_bytes < self.line_bytes);
        assert!(self.max_uops_per_entry > 0);
        assert!(self.max_entries_per_line >= 1);
        assert!(self.clasp_max_lines >= 2);
        if self.compaction.enabled() {
            assert!(
                self.max_entries_per_line >= 2,
                "compaction requires >= 2 entries per line"
            );
        }
        // An entry of max uops and no imm fields must fit a line.
        assert!(
            self.max_uops_per_entry * ucsim_model::UOP_BYTES <= self.entry_byte_budget(),
            "max-uop entry cannot fit the line budget"
        );
    }
}

impl Default for UopCacheConfig {
    fn default() -> Self {
        Self::baseline_2k()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_2k_uops() {
        let c = UopCacheConfig::baseline_2k();
        c.validate();
        assert_eq!(c.capacity_uops(), 2048);
        assert_eq!(c.entry_byte_budget(), 62);
    }

    #[test]
    fn capacity_sweep_scales_sets() {
        for (uops, sets) in [
            (2048, 32),
            (4096, 64),
            (8192, 128),
            (16384, 256),
            (32768, 512),
            (65536, 1024),
        ] {
            let c = UopCacheConfig::baseline_with_capacity(uops);
            c.validate();
            assert_eq!(c.sets, sets);
            assert_eq!(c.capacity_uops(), uops);
        }
    }

    #[test]
    fn compaction_implies_clasp() {
        let c = UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 2);
        c.validate();
        assert!(c.clasp);
        assert_eq!(c.max_entries_per_line, 2);
    }

    #[test]
    #[should_panic(expected = ">= 2 entries")]
    fn compaction_rejects_single_entry() {
        let _ = UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Rac, 1);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_odd_capacity() {
        let _ = UopCacheConfig::baseline_with_capacity(3000);
    }

    #[test]
    fn policy_enabled_predicate() {
        assert!(!CompactionPolicy::None.enabled());
        assert!(CompactionPolicy::Rac.enabled());
        assert!(CompactionPolicy::Pwac.enabled());
        assert!(CompactionPolicy::Fpwac.enabled());
    }
}

//! Uop cache entries.

use ucsim_model::{Addr, EntryTermination, LineAddr, PwId, IMM_DISP_BYTES, UOP_BYTES};
use ucsim_model::{FromJson, ToJson};

/// One uop cache entry: a run of decoded uops covering the instruction
/// bytes `[start, end)`, plus the metadata the tag array keeps (paper
/// Section II-B2 / Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, ToJson, FromJson)]
pub struct UopCacheEntry {
    /// Address of the first instruction byte covered.
    pub start: Addr,
    /// One past the last instruction byte covered.
    pub end: Addr,
    /// PW-ID tag for PWAC/F-PWAC (the PW active when the entry closed).
    pub pw_id: PwId,
    /// First PW that contributed instructions (PW ids are sequential, so
    /// `first_pw..=pw_id` is the covered PW range — Figure 12 statistic).
    pub first_pw: PwId,
    /// Number of uops stored.
    pub uops: u32,
    /// Number of 32-bit immediate/displacement fields stored.
    pub imm_disp: u32,
    /// Number of micro-coded instructions contained.
    pub ucoded_insts: u32,
    /// Number of x86 instructions covered.
    pub insts: u32,
    /// Why the entry terminated.
    pub term: EntryTermination,
    /// True if the entry ends in a branch that was predicted taken.
    pub ends_in_taken_branch: bool,
    /// Number of I-cache lines holding instruction *start* bytes (1 in
    /// the baseline; up to `clasp_max_lines` with CLASP). The final
    /// instruction's tail bytes may spill one line further — that spill
    /// does not count here (it is an I-cache artifact, not a CLASP merge)
    /// but is covered by [`Self::overlaps_line`] for invalidation.
    pub pc_lines: u32,
}

impl UopCacheEntry {
    /// Storage footprint in line bytes: uops on the left, imm/disp fields
    /// on the right of the line (paper Section II-B2).
    pub fn bytes(&self) -> u32 {
        self.uops * UOP_BYTES + self.imm_disp * IMM_DISP_BYTES
    }

    /// Instruction-byte length covered.
    pub fn code_bytes(&self) -> u64 {
        self.end.distance_from(self.start)
    }

    /// Number of I-cache lines the covered bytes touch (1 for baseline
    /// entries, up to `clasp_max_lines` with CLASP).
    pub fn lines_spanned(&self) -> u32 {
        if self.code_bytes() == 0 {
            return 1;
        }
        let first = self.start.line().number();
        let last = self.end.offset(u64::MAX).line().number(); // end-1
        (last - first + 1) as u32
    }

    /// True if the entry's covered bytes overlap the given I-cache line
    /// (used by SMC invalidation probes).
    pub fn overlaps_line(&self, line: LineAddr) -> bool {
        self.start.get() < line.end().get() && self.end.get() > line.base().get()
    }

    /// True if the entry holds instructions from more than one I-cache
    /// line — a CLASP merge (the Figure 9 statistic).
    pub fn spans_boundary(&self) -> bool {
        self.pc_lines > 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(start: u64, end: u64, uops: u32, imm: u32) -> UopCacheEntry {
        UopCacheEntry {
            start: Addr::new(start),
            end: Addr::new(end),
            pw_id: PwId(0),
            first_pw: PwId(0),
            uops,
            imm_disp: imm,
            ucoded_insts: 0,
            insts: uops,
            term: EntryTermination::IcacheBoundary,
            ends_in_taken_branch: false,
            pc_lines: 1,
        }
    }

    #[test]
    fn byte_accounting() {
        assert_eq!(entry(0, 16, 4, 2).bytes(), 4 * 7 + 2 * 4);
        assert_eq!(entry(0, 16, 8, 0).bytes(), 56);
    }

    #[test]
    fn line_spanning() {
        assert_eq!(entry(0x1000, 0x1040, 8, 0).lines_spanned(), 1);
        assert_eq!(entry(0x1000, 0x1041, 8, 0).lines_spanned(), 2);
        assert_eq!(entry(0x103e, 0x1042, 2, 0).lines_spanned(), 2);
        // Boundary spanning is PC-attribution-based, not byte-based.
        assert!(!entry(0x1000, 0x1040, 8, 0).spans_boundary());
        assert!(!entry(0x103e, 0x1042, 2, 0).spans_boundary());
        let mut clasp = entry(0x1030, 0x1050, 6, 0);
        clasp.pc_lines = 2;
        assert!(clasp.spans_boundary());
    }

    #[test]
    fn overlap_probe() {
        let e = entry(0x1030, 0x1050, 6, 0); // spans lines 0x40 and 0x41
        assert!(e.overlaps_line(Addr::new(0x1000).line()));
        assert!(e.overlaps_line(Addr::new(0x1040).line()));
        assert!(!e.overlaps_line(Addr::new(0x1080).line()));
        assert!(!e.overlaps_line(Addr::new(0x0fc0).line()));
    }

    #[test]
    fn exact_line_end_does_not_overlap_next() {
        let e = entry(0x1000, 0x1040, 8, 0);
        assert!(!e.overlaps_line(Addr::new(0x1040).line()));
    }
}

//! Physical uop cache lines (possibly holding several compacted entries).

use ucsim_model::Addr;
use ucsim_model::{FromJson, ToJson};

use crate::{PlacementKind, UopCacheConfig, UopCacheEntry};

/// One physical 64-byte uop cache line.
///
/// In the baseline a line holds exactly one entry; with compaction it
/// holds up to `max_entries_per_line`, each remembered together with the
/// policy that placed it (the Figure 19 statistic). Replacement state is
/// per *line* regardless of how many entries it holds (paper Section V-B).
#[derive(Debug, Clone, Default, PartialEq, ToJson, FromJson)]
pub struct UopCacheLine {
    entries: Vec<(UopCacheEntry, PlacementKind)>,
}

impl UopCacheLine {
    /// An empty (invalid) line.
    pub fn new() -> Self {
        UopCacheLine::default()
    }

    /// An empty line with entry storage pre-sized to the per-line entry
    /// bound, so steady-state fills never grow the backing vector.
    pub fn with_entry_capacity(max_entries: usize) -> Self {
        UopCacheLine {
            entries: Vec::with_capacity(max_entries),
        }
    }

    /// True when the line holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of resident entries.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Bytes consumed by resident entries (excluding the ctr field, which
    /// the config accounts for in [`UopCacheConfig::entry_byte_budget`]).
    pub fn used_bytes(&self) -> u32 {
        self.entries.iter().map(|(e, _)| e.bytes()).sum()
    }

    /// Free bytes available for a further compacted entry.
    pub fn free_bytes(&self, cfg: &UopCacheConfig) -> u32 {
        cfg.entry_byte_budget().saturating_sub(self.used_bytes())
    }

    /// True if `entry` fits: byte budget and per-line entry bound.
    pub fn fits(&self, cfg: &UopCacheConfig, entry: &UopCacheEntry) -> bool {
        self.entry_count() < cfg.max_entries_per_line as usize
            && entry.bytes() <= self.free_bytes(cfg)
    }

    /// Adds an entry (caller must have checked [`Self::fits`]).
    ///
    /// # Panics
    ///
    /// Panics if an entry with the same start address is already resident.
    pub fn insert(&mut self, entry: UopCacheEntry, placement: PlacementKind) {
        assert!(
            self.entry_with_start(entry.start).is_none(),
            "duplicate entry start {}",
            entry.start
        );
        self.entries.push((entry, placement));
    }

    /// The resident entry at slot `i` (insertion order).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn entry_at(&self, i: usize) -> &UopCacheEntry {
        &self.entries[i].0
    }

    /// The resident entry starting exactly at `addr`, if any.
    pub fn entry_with_start(&self, addr: Addr) -> Option<&UopCacheEntry> {
        self.entries
            .iter()
            .find(|(e, _)| e.start == addr)
            .map(|(e, _)| e)
    }

    /// Iterates over resident entries.
    pub fn entries(&self) -> impl Iterator<Item = &UopCacheEntry> {
        self.entries.iter().map(|(e, _)| e)
    }

    /// Iterates over `(entry, placement)` pairs.
    pub fn entries_with_placement(&self) -> impl Iterator<Item = (&UopCacheEntry, PlacementKind)> {
        self.entries.iter().map(|(e, p)| (e, *p))
    }

    /// Removes all entries (whole-line eviction — the paper's fill-time
    /// victim semantics), returning how many were resident. Allocation
    /// free: evictions happen on every conflicting fill in steady state,
    /// and no caller needs the displaced entries themselves.
    pub fn evict_all(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }

    /// Removes entries matching `pred`, appending them to `out` (a
    /// caller-owned scratch buffer, so the steady-state fill path never
    /// allocates) and returning how many were removed.
    pub fn remove_matching_into<F: FnMut(&UopCacheEntry) -> bool>(
        &mut self,
        mut pred: F,
        out: &mut Vec<UopCacheEntry>,
    ) -> usize {
        let before = out.len();
        self.entries.retain(|(e, _)| {
            if pred(e) {
                out.push(*e);
                false
            } else {
                true
            }
        });
        out.len() - before
    }

    /// Removes entries matching `pred`, returning only the count.
    pub fn remove_matching_count<F: FnMut(&UopCacheEntry) -> bool>(
        &mut self,
        mut pred: F,
    ) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(e, _)| !pred(e));
        before - self.entries.len()
    }

    /// True if any resident entry was created by the given PW (the PW-ID
    /// tag of PWAC/F-PWAC is the PW in which the entry *started*; a split
    /// PW's second entry often closes one or more sequential PWs later,
    /// so matching on the closing PW would never unite them).
    pub fn has_pw(&self, pw: ucsim_model::PwId) -> bool {
        self.entries.iter().any(|(e, _)| e.first_pw == pw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucsim_model::{EntryTermination, PwId};

    fn entry(start: u64, uops: u32) -> UopCacheEntry {
        UopCacheEntry {
            start: Addr::new(start),
            end: Addr::new(start + uops as u64 * 4),
            pw_id: PwId(1),
            first_pw: PwId(1),
            uops,
            imm_disp: 0,
            ucoded_insts: 0,
            insts: uops,
            term: EntryTermination::TakenBranch,
            ends_in_taken_branch: true,
            pc_lines: 1,
        }
    }

    fn cfg2() -> UopCacheConfig {
        let mut c = UopCacheConfig::baseline_2k();
        c.max_entries_per_line = 2;
        c
    }

    #[test]
    fn byte_budget_enforced() {
        let cfg = cfg2();
        let mut line = UopCacheLine::new();
        line.insert(entry(0x100, 5), PlacementKind::NewLine); // 35 B
        assert_eq!(line.used_bytes(), 35);
        assert_eq!(line.free_bytes(&cfg), 27);
        assert!(line.fits(&cfg, &entry(0x200, 3))); // 21 B
        assert!(!line.fits(&cfg, &entry(0x300, 4))); // 28 B > 27
    }

    #[test]
    fn entry_count_enforced() {
        let cfg = cfg2();
        let mut line = UopCacheLine::new();
        line.insert(entry(0x100, 2), PlacementKind::NewLine);
        line.insert(entry(0x200, 2), PlacementKind::Rac);
        assert!(!line.fits(&cfg, &entry(0x300, 1)), "max 2 entries");
    }

    #[test]
    fn lookup_by_start() {
        let mut line = UopCacheLine::new();
        line.insert(entry(0x100, 2), PlacementKind::NewLine);
        assert!(line.entry_with_start(Addr::new(0x100)).is_some());
        assert!(line.entry_with_start(Addr::new(0x104)).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate entry")]
    fn rejects_duplicate_start() {
        let mut line = UopCacheLine::new();
        line.insert(entry(0x100, 2), PlacementKind::NewLine);
        line.insert(entry(0x100, 3), PlacementKind::Rac);
    }

    #[test]
    fn evict_all_empties() {
        let mut line = UopCacheLine::new();
        line.insert(entry(0x100, 2), PlacementKind::NewLine);
        line.insert(entry(0x200, 2), PlacementKind::Pwac);
        assert_eq!(line.evict_all(), 2);
        assert!(line.is_empty());
    }

    #[test]
    fn remove_matching_filters() {
        let mut line = UopCacheLine::new();
        line.insert(entry(0x100, 2), PlacementKind::NewLine);
        let mut other = entry(0x200, 2);
        other.pw_id = PwId(9);
        other.first_pw = PwId(9);
        line.insert(other, PlacementKind::Rac);
        let mut removed = Vec::new();
        assert_eq!(
            line.remove_matching_into(|e| e.pw_id == PwId(9), &mut removed),
            1
        );
        assert_eq!(removed.len(), 1);
        assert_eq!(line.entry_count(), 1);
        assert!(line.has_pw(PwId(1)));
        assert!(!line.has_pw(PwId(9)));
    }
}

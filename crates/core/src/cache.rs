//! The uop cache proper: lookup, fill (with CLASP + compaction), and
//! self-modifying-code invalidation.

use ucsim_mem::ReplacementState;
use ucsim_model::{Addr, LineAddr, PwId};

use crate::{
    CompactionPolicy, PlacementKind, UopCacheConfig, UopCacheEntry, UopCacheLine, UopCacheStats,
};

/// Result of a fill operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillOutcome {
    /// How the entry was placed.
    pub placement: PlacementKind,
    /// Number of entries displaced from the cache by this fill. A count
    /// rather than the entries themselves: no caller consumes the
    /// displaced entries, and returning them would allocate on every
    /// conflicting fill — i.e. continuously once the cache warms up.
    pub evicted: usize,
    /// True if the fill was dropped because an identical-start entry is
    /// already resident.
    pub duplicate: bool,
}

/// Per-set occupancy/coverage summary, maintained at fill/invalidate
/// time so the per-miss interior-coverage scan can short-circuit without
/// walking the set's lines. `min_start`/`max_end` bound the union of all
/// resident entries' `[start, end)` ranges.
#[derive(Debug, Clone, Copy, Default)]
struct SetSummary {
    /// Resident entries in the set.
    entries: u32,
    /// Smallest resident `start` byte.
    min_start: u64,
    /// Largest resident `end` byte (exclusive).
    max_end: u64,
}

impl SetSummary {
    /// True when no resident entry can *cover* `addr` strictly in its
    /// interior (`start < addr < end`) — the interior-miss scan is
    /// provably empty and can be skipped.
    fn rules_out_interior(&self, addr: u64) -> bool {
        self.entries == 0 || addr <= self.min_start || addr >= self.max_end
    }
}

struct SetState {
    lines: Vec<UopCacheLine>,
    repl: ReplacementState,
    summary: SetSummary,
    /// SoA lookup index over every resident entry in the set: packed
    /// start addresses plus parallel `(way, slot)` locations. The hot
    /// lookup scans this contiguous array instead of chasing one heap
    /// pointer per way; it is rebuilt wherever the summary is (fills and
    /// invalidations mutate sets orders of magnitude less often than
    /// lookups probe them).
    starts: Vec<u64>,
    locs: Vec<(u8, u8)>,
}

impl SetState {
    /// Recomputes the summary from the resident entries. Called on
    /// mutation (fills, invalidations, flushes) — rare next to lookups,
    /// and a set holds at most `ways × max_entries_per_line` entries.
    fn refresh_summary(&mut self) {
        let mut s = SetSummary {
            entries: 0,
            min_start: u64::MAX,
            max_end: 0,
        };
        self.starts.clear();
        self.locs.clear();
        for (way, l) in self.lines.iter().enumerate() {
            for (slot, e) in l.entries().enumerate() {
                s.entries += 1;
                s.min_start = s.min_start.min(e.start.get());
                s.max_end = s.max_end.max(e.end.get());
                self.starts.push(e.start.get());
                self.locs.push((way as u8, slot as u8));
            }
        }
        self.summary = s;
    }
}

/// The micro-operation cache.
///
/// Indexing follows the paper (Section II-B3): the set is derived from the
/// entry's starting physical address at I-cache-line granularity, so all
/// entries born in one I-cache line share a set and one SMC probe per line
/// suffices; the tag is the full starting byte address. Compaction only
/// co-locates entries of the same set, preserving that invariant.
///
/// # Example
///
/// ```
/// use ucsim_model::{Addr, EntryTermination, PwId};
/// use ucsim_uopcache::{UopCache, UopCacheConfig, UopCacheEntry};
///
/// let mut oc = UopCache::new(UopCacheConfig::baseline_2k());
/// let e = UopCacheEntry {
///     start: Addr::new(0x1000), end: Addr::new(0x1020),
///     pw_id: PwId(0), first_pw: PwId(0),
///     uops: 6, imm_disp: 0, ucoded_insts: 0, insts: 6,
///     term: EntryTermination::TakenBranch, ends_in_taken_branch: true,
///     pc_lines: 1,
/// };
/// oc.fill(e);
/// assert_eq!(oc.lookup(Addr::new(0x1000)).map(|e| e.uops), Some(6));
/// assert!(oc.lookup(Addr::new(0x1004)).is_none()); // tag is the start byte
/// ```
pub struct UopCache {
    cfg: UopCacheConfig,
    sets: Vec<SetState>,
    stats: UopCacheStats,
    /// `cfg.sets - 1`, precomputed: the set-index mask is applied on
    /// every lookup/fill/probe.
    set_mask: usize,
    /// Reusable per-fill scratch (the way-validity mask handed to the
    /// replacement policy) so the no-eviction fill path allocates
    /// nothing.
    valid_scratch: Vec<bool>,
    /// Reusable recency-order scratch for compacting fills.
    order_scratch: Vec<usize>,
    /// Reusable scratch for F-PWAC forced moves (foreign entries pulled
    /// out of the PW line before rewriting them to the victim line).
    foreign_scratch: Vec<UopCacheEntry>,
    /// Reusable scratch of set indices probed by an SMC invalidation.
    probe_scratch: Vec<usize>,
}

impl std::fmt::Debug for UopCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UopCache")
            .field("cfg", &self.cfg)
            .field("resident_entries", &self.resident_entries())
            .finish()
    }
}

impl UopCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: UopCacheConfig) -> Self {
        cfg.validate();
        let sets = (0..cfg.sets)
            .map(|_| SetState {
                lines: (0..cfg.ways)
                    .map(|_| UopCacheLine::with_entry_capacity(cfg.max_entries_per_line as usize))
                    .collect(),
                repl: ReplacementState::new(cfg.replacement, cfg.ways),
                summary: SetSummary::default(),
                starts: Vec::with_capacity(cfg.ways * cfg.max_entries_per_line as usize),
                locs: Vec::with_capacity(cfg.ways * cfg.max_entries_per_line as usize),
            })
            .collect();
        UopCache {
            sets,
            stats: UopCacheStats::new(),
            set_mask: cfg.sets - 1,
            valid_scratch: Vec::with_capacity(cfg.ways),
            order_scratch: Vec::with_capacity(cfg.ways),
            foreign_scratch: Vec::with_capacity(cfg.max_entries_per_line as usize),
            probe_scratch: Vec::with_capacity(cfg.clasp_max_lines as usize + 1),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &UopCacheConfig {
        &self.cfg
    }

    /// Utilization statistics.
    pub fn stats(&self) -> &UopCacheStats {
        &self.stats
    }

    /// Mutable statistics access (warmup-boundary reset).
    pub fn stats_mut(&mut self) -> &mut UopCacheStats {
        &mut self.stats
    }

    fn set_of(&self, addr: Addr) -> usize {
        (addr.line().number() as usize) & self.set_mask
    }

    /// Looks up an entry starting exactly at `addr`, updating replacement
    /// and hit statistics.
    pub fn lookup(&mut self, addr: Addr) -> Option<UopCacheEntry> {
        let si = self.set_of(addr);
        let set = &mut self.sets[si];
        debug_assert_eq!(
            set.starts.iter().any(|&s| s == addr.get()),
            set.lines.iter().any(|l| l.entry_with_start(addr).is_some()),
            "set start index out of sync with line contents"
        );
        if let Some(p) = set.starts.iter().position(|&s| s == addr.get()) {
            let (way, slot) = set.locs[p];
            let e = *set.lines[way as usize].entry_at(slot as usize);
            debug_assert_eq!(e.start, addr);
            set.repl.on_hit(way as usize);
            self.stats.note_lookup(true, e.uops as u64);
            return Some(e);
        }
        // Interior-coverage diagnostic: only scan the set when the
        // summary says some resident entry could actually cover `addr`
        // (empty and disjoint sets — the overwhelmingly common miss —
        // skip the walk entirely).
        if !set.summary.rules_out_interior(addr.get()) {
            let interior = set.lines.iter().any(|l| {
                l.entries()
                    .any(|e| e.start.get() < addr.get() && addr.get() < e.end.get())
            });
            if interior {
                self.stats.note_interior_miss();
            }
        }
        self.stats.note_lookup(false, 0);
        None
    }

    /// Read-only lookup: the entry starting exactly at `addr`, without
    /// touching replacement state or statistics. Diagnostics and
    /// external observers (metrics endpoints, tests) use this so
    /// inspecting the cache never perturbs the simulated replacement
    /// recency — and never needs exclusive access.
    pub fn lookup_ref(&self, addr: Addr) -> Option<&UopCacheEntry> {
        let si = self.set_of(addr);
        self.sets[si]
            .lines
            .iter()
            .find_map(|l| l.entry_with_start(addr))
    }

    /// Non-updating presence check.
    pub fn probe(&self, addr: Addr) -> bool {
        self.lookup_ref(addr).is_some()
    }

    /// Fills a completed entry, applying the configured compaction policy
    /// chain: F-PWAC → PWAC → RAC → plain whole-line allocation.
    pub fn fill(&mut self, entry: UopCacheEntry) -> FillOutcome {
        debug_assert!(entry.bytes() <= self.cfg.entry_byte_budget());
        let si = self.set_of(entry.start);

        // Duplicate suppression: a resident entry with the same start is
        // refreshed, not re-filled (the IC path can rebuild hot code while
        // an identical entry sits in the cache).
        if let Some(way) = self.sets[si]
            .lines
            .iter()
            .position(|l| l.entry_with_start(entry.start).is_some())
        {
            self.sets[si].repl.on_hit(way);
            self.stats.note_duplicate_fill();
            return FillOutcome {
                placement: PlacementKind::NewLine,
                evicted: 0,
                duplicate: true,
            };
        }

        let policy = self.cfg.compaction;
        let outcome = if policy.enabled() {
            self.fill_compacting(si, entry, policy)
        } else {
            self.fill_new_line(si, entry)
        };
        self.sets[si].refresh_summary();
        self.stats
            .note_fill(&entry, outcome.placement, outcome.evicted);
        outcome
    }

    /// Chooses the replacement victim of set `si`, reusing the validity
    /// scratch buffer (no per-fill allocation).
    fn victim_of(&mut self, si: usize) -> usize {
        let mut valid = std::mem::take(&mut self.valid_scratch);
        valid.clear();
        valid.extend(self.sets[si].lines.iter().map(|l| !l.is_empty()));
        let way = self.sets[si].repl.victim(&valid);
        self.valid_scratch = valid;
        way
    }

    /// The set's valid ways in recency order, written into the reusable
    /// order scratch. The caller must hand the buffer back by assigning
    /// `self.order_scratch` when done with it.
    fn recency_order_of(&mut self, si: usize) -> Vec<usize> {
        let mut valid = std::mem::take(&mut self.valid_scratch);
        valid.clear();
        valid.extend(self.sets[si].lines.iter().map(|l| !l.is_empty()));
        let mut order = std::mem::take(&mut self.order_scratch);
        self.sets[si].repl.recency_order_into(&valid, &mut order);
        self.valid_scratch = valid;
        order
    }

    fn fill_new_line(&mut self, si: usize, entry: UopCacheEntry) -> FillOutcome {
        let way = self.victim_of(si);
        let set = &mut self.sets[si];
        let evicted = set.lines[way].evict_all();
        set.lines[way].insert(entry, PlacementKind::NewLine);
        set.repl.on_fill(way);
        FillOutcome {
            placement: PlacementKind::NewLine,
            evicted,
            duplicate: false,
        }
    }

    fn fill_compacting(
        &mut self,
        si: usize,
        entry: UopCacheEntry,
        policy: CompactionPolicy,
    ) -> FillOutcome {
        // --- PWAC: prefer the line already holding this entry's PW.
        if matches!(policy, CompactionPolicy::Pwac | CompactionPolicy::Fpwac) {
            let pw_way = self.sets[si]
                .lines
                .iter()
                .position(|l| l.has_pw(entry.first_pw));
            if let Some(way) = pw_way {
                if self.sets[si].lines[way].fits(&self.cfg, &entry) {
                    self.sets[si].lines[way].insert(entry, PlacementKind::Pwac);
                    self.sets[si].repl.on_fill(way);
                    return FillOutcome {
                        placement: PlacementKind::Pwac,
                        evicted: 0,
                        duplicate: false,
                    };
                }
                // --- F-PWAC: the same-PW entry is compacted with foreign
                // entries and there is no room (paper Figure 14). Pull the
                // PW's entries together and move the foreigners to the LRU
                // victim line.
                if policy == CompactionPolicy::Fpwac {
                    if let Some(outcome) = self.forced_pwac(si, way, entry) {
                        return outcome;
                    }
                }
            }
        }

        // --- RAC: most-recently-used line with room (recency order).
        let order = self.recency_order_of(si);
        let target = order
            .iter()
            .copied()
            .find(|&way| self.sets[si].lines[way].fits(&self.cfg, &entry));
        self.order_scratch = order;
        if let Some(way) = target {
            self.sets[si].lines[way].insert(entry, PlacementKind::Rac);
            self.sets[si].repl.on_fill(way);
            return FillOutcome {
                placement: PlacementKind::Rac,
                evicted: 0,
                duplicate: false,
            };
        }

        // --- Fall back: own line.
        self.fill_new_line(si, entry)
    }

    /// The forced F-PWAC move. Returns `None` when the united same-PW
    /// entries would not fit one line (fall back to RAC).
    fn forced_pwac(
        &mut self,
        si: usize,
        pw_way: usize,
        entry: UopCacheEntry,
    ) -> Option<FillOutcome> {
        let pw = entry.first_pw;
        let byte_budget = self.cfg.entry_byte_budget();
        let max_entries = self.cfg.max_entries_per_line as usize;
        let same_bytes: u32 = self.sets[si].lines[pw_way]
            .entries()
            .filter(|e| e.first_pw == pw)
            .map(|e| e.bytes())
            .sum();
        let same_count = self.sets[si].lines[pw_way]
            .entries()
            .filter(|e| e.first_pw == pw)
            .count();
        if same_bytes + entry.bytes() > byte_budget || same_count + 1 > max_entries {
            return None;
        }

        // Split the line: same-PW entries stay, foreigners move out
        // through the reusable scratch buffer (forced moves recur in
        // steady state, so this path must not allocate).
        let mut foreign = std::mem::take(&mut self.foreign_scratch);
        foreign.clear();
        self.sets[si].lines[pw_way].remove_matching_into(|e| e.first_pw != pw, &mut foreign);
        self.sets[si].lines[pw_way].insert(entry, PlacementKind::Fpwac);
        self.sets[si].repl.on_fill(pw_way);

        let mut evicted = 0;
        if !foreign.is_empty() {
            // Foreign entries are rewritten to the current LRU line (paper:
            // "written to the LRU line after the victim entries are
            // evicted"), whose replacement state is then refreshed.
            let vway = self.victim_of(si);
            debug_assert_ne!(vway, pw_way, "pw line just became MRU");
            let set = &mut self.sets[si];
            evicted = set.lines[vway].evict_all();
            for f in foreign.drain(..) {
                set.lines[vway].insert(f, PlacementKind::Rac);
            }
            set.repl.on_fill(vway);
        }
        self.foreign_scratch = foreign;
        self.stats.note_forced_move();
        Some(FillOutcome {
            placement: PlacementKind::Fpwac,
            evicted,
            duplicate: false,
        })
    }

    /// Self-modifying-code invalidation probe for one I-cache line: drops
    /// every entry whose covered bytes overlap `line`. The probe also
    /// searches the sets of preceding lines, because an entry starting in
    /// an earlier line can extend into `line`: one line back in the
    /// baseline (a boundary-crossing x86 instruction spills its bytes),
    /// `clasp_max_lines` back with CLASP (paper Section V-A). Returns the
    /// number of entries invalidated.
    pub fn invalidate_icache_line(&mut self, line: LineAddr) -> usize {
        let mut removed = 0;
        let depth = if self.cfg.clasp {
            self.cfg.clasp_max_lines as u64
        } else {
            1
        };
        let mut probe_sets = std::mem::take(&mut self.probe_scratch);
        probe_sets.clear();
        for back in 0..=depth {
            let l = LineAddr::from_line_number(line.number().saturating_sub(back));
            let si = (l.number() as usize) & self.set_mask;
            if !probe_sets.contains(&si) {
                probe_sets.push(si);
            }
        }
        for &si in &probe_sets {
            let before = removed;
            for l in &mut self.sets[si].lines {
                removed += l.remove_matching_count(|e| e.overlaps_line(line));
            }
            if removed != before {
                self.sets[si].refresh_summary();
            }
        }
        self.probe_scratch = probe_sets;
        self.stats.note_invalidation(removed as u64);
        removed
    }

    /// Flushes the whole cache (used between experiment phases/tests).
    pub fn flush_all(&mut self) {
        for set in &mut self.sets {
            for l in &mut set.lines {
                l.evict_all();
            }
            set.summary = SetSummary::default();
            set.starts.clear();
            set.locs.clear();
        }
    }

    /// Total resident entries.
    pub fn resident_entries(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.lines.iter())
            .map(|l| l.entry_count())
            .sum()
    }

    /// Total resident uops.
    pub fn resident_uops(&self) -> u64 {
        self.sets
            .iter()
            .flat_map(|s| s.lines.iter())
            .flat_map(|l| l.entries())
            .map(|e| e.uops as u64)
            .sum()
    }

    /// Number of valid (non-empty) physical lines.
    pub fn valid_lines(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.lines.iter())
            .filter(|l| !l.is_empty())
            .count()
    }

    /// Number of valid lines holding ≥ 2 compacted entries (Figure 18's
    /// structural view).
    pub fn compacted_lines(&self) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.lines.iter())
            .filter(|l| l.entry_count() >= 2)
            .count()
    }

    /// Iterates over all resident entries (diagnostics).
    pub fn iter_entries(&self) -> impl Iterator<Item = &UopCacheEntry> {
        self.sets
            .iter()
            .flat_map(|s| s.lines.iter())
            .flat_map(|l| l.entries())
    }

    /// Returns `(total_code_bytes, unique_code_bytes)` over all resident
    /// entries — a duplication diagnostic: total > unique means the same
    /// instruction bytes are cached in multiple overlapping entries
    /// (multi-entry-point code, paper Section II-B4).
    pub fn coverage(&self) -> (u64, u64) {
        let mut ranges: Vec<(u64, u64)> = self
            .iter_entries()
            .map(|e| (e.start.get(), e.end.get()))
            .collect();
        let total: u64 = ranges.iter().map(|(s, e)| e - s).sum();
        ranges.sort_unstable();
        let mut unique = 0;
        let mut cur: Option<(u64, u64)> = None;
        for (s, e) in ranges {
            match cur {
                Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
                Some((cs, ce)) => {
                    unique += ce - cs;
                    cur = Some((s, e));
                    let _ = cs;
                }
                None => cur = Some((s, e)),
            }
        }
        if let Some((cs, ce)) = cur {
            unique += ce - cs;
        }
        (total, unique)
    }

    /// The set index an address maps to (exposed for tests/diagnostics).
    pub fn set_index_of(&self, addr: Addr) -> usize {
        self.set_of(addr)
    }

    /// Looks up any resident entry tagged with `pw` in the set of `addr`
    /// (diagnostics for PWAC tests).
    pub fn has_pw_in_set(&self, addr: Addr, pw: PwId) -> bool {
        let si = self.set_of(addr);
        self.sets[si].lines.iter().any(|l| l.has_pw(pw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucsim_model::EntryTermination;

    fn entry_at(start: u64, uops: u32, pw: u64) -> UopCacheEntry {
        UopCacheEntry {
            start: Addr::new(start),
            end: Addr::new(start + uops as u64 * 4),
            pw_id: PwId(pw),
            first_pw: PwId(pw),
            uops,
            imm_disp: 0,
            ucoded_insts: 0,
            insts: uops,
            term: EntryTermination::TakenBranch,
            ends_in_taken_branch: true,
            pc_lines: 1,
        }
    }

    fn baseline() -> UopCache {
        UopCache::new(UopCacheConfig::baseline_2k())
    }

    fn compacting(policy: CompactionPolicy) -> UopCache {
        UopCache::new(UopCacheConfig::baseline_2k().with_compaction(policy, 2))
    }

    #[test]
    fn fill_lookup_roundtrip() {
        let mut oc = baseline();
        let e = entry_at(0x1008, 4, 0);
        oc.fill(e);
        assert_eq!(oc.lookup(Addr::new(0x1008)), Some(e));
        assert!(oc.lookup(Addr::new(0x1000)).is_none());
        assert_eq!(oc.stats().lookups, 2);
        assert_eq!(oc.stats().hits, 1);
    }

    #[test]
    fn same_icache_line_same_set() {
        let oc = baseline();
        // Any two byte addresses in one I-cache line map to one set (the
        // SMC single-probe invariant, paper Section II-B4).
        assert_eq!(
            oc.set_index_of(Addr::new(0x1000)),
            oc.set_index_of(Addr::new(0x103f))
        );
        assert_ne!(
            oc.set_index_of(Addr::new(0x1000)),
            oc.set_index_of(Addr::new(0x1040))
        );
    }

    #[test]
    fn duplicate_fill_is_suppressed() {
        let mut oc = baseline();
        oc.fill(entry_at(0x1000, 4, 0));
        let out = oc.fill(entry_at(0x1000, 4, 0));
        assert!(out.duplicate);
        assert_eq!(oc.resident_entries(), 1);
        assert_eq!(oc.stats().duplicate_fills, 1);
    }

    #[test]
    fn conflict_evicts_lru_whole_line() {
        let mut oc = baseline(); // 32 sets, 8 ways
                                 // 9 entries in distinct I-cache lines mapping to set of 0x1000:
                                 // lines 0x40, 0x60, 0x80... step 32 lines (0x800 bytes).
        for i in 0..9u64 {
            oc.fill(entry_at(0x1000 + i * 0x800, 4, i));
        }
        // The first-filled entry is the LRU victim.
        assert!(!oc.probe(Addr::new(0x1000)));
        assert!(oc.probe(Addr::new(0x1800)));
        assert_eq!(oc.resident_entries(), 8);
    }

    #[test]
    fn baseline_never_compacts() {
        let mut oc = baseline();
        oc.fill(entry_at(0x1000, 2, 0));
        oc.fill(entry_at(0x1010, 2, 0)); // same set, small entries
        assert_eq!(oc.compacted_lines(), 0);
        assert_eq!(oc.resident_entries(), 2);
        assert_eq!(oc.valid_lines(), 2);
    }

    #[test]
    fn rac_compacts_into_mru_line() {
        let mut oc = compacting(CompactionPolicy::Rac);
        let a = entry_at(0x1000, 4, 1); // 28 B
        let b = entry_at(0x1010, 4, 2); // 28 B → fits alongside a (56 ≤ 62)
        oc.fill(a);
        let out = oc.fill(b);
        assert_eq!(out.placement, PlacementKind::Rac);
        assert_eq!(oc.valid_lines(), 1);
        assert_eq!(oc.compacted_lines(), 1);
        assert_eq!(oc.lookup(Addr::new(0x1000)), Some(a));
        assert_eq!(oc.lookup(Addr::new(0x1010)), Some(b));
    }

    #[test]
    fn rac_respects_byte_budget() {
        let mut oc = compacting(CompactionPolicy::Rac);
        oc.fill(entry_at(0x1000, 6, 1)); // 42 B
        let out = oc.fill(entry_at(0x1010, 4, 2)); // 28 B → 70 > 62
        assert_eq!(out.placement, PlacementKind::NewLine);
        assert_eq!(oc.valid_lines(), 2);
    }

    #[test]
    fn pwac_prefers_same_pw_line() {
        let mut oc = compacting(CompactionPolicy::Pwac);
        // Three small entries: PW 7, PW 9, then another PW 9. RAC would
        // put the third with the MRU (PW 9's line only if MRU) — make PW 7
        // the MRU by touching it, then check PWAC still unites PW 9.
        oc.fill(entry_at(0x1000, 2, 7)); // line A
        oc.fill(entry_at(0x1008, 2, 9)); // compacted into A (RAC, MRU)...
                                         // Force separation: fill something big under PW 9 that cannot fit
                                         // line A.
        let mut oc = compacting(CompactionPolicy::Pwac);
        oc.fill(entry_at(0x1000, 6, 7)); // line A: 42 B
        oc.fill(entry_at(0x1010, 6, 9)); // line B: 42 B (can't fit A)
        oc.lookup(Addr::new(0x1000)); // make line A MRU
        let out = oc.fill(entry_at(0x1020, 2, 9)); // 14 B: fits either
        assert_eq!(out.placement, PlacementKind::Pwac, "must pick PW 9's line");
        // Verify co-residency: the PW-9 line holds both PW-9 entries.
        let si = oc.set_index_of(Addr::new(0x1020));
        let _ = si;
        assert!(oc.has_pw_in_set(Addr::new(0x1020), PwId(9)));
        assert_eq!(oc.valid_lines(), 2);
    }

    #[test]
    fn fpwac_forces_reunion() {
        let mut oc = compacting(CompactionPolicy::Fpwac);
        // Figure 14 scenario: PWA + PWB1 compacted in one line; PWB2
        // arrives and cannot fit; F-PWAC moves PWA out and unites PWB1+2.
        let pwa = entry_at(0x1000, 4, 100); // 28 B
        let pwb1 = entry_at(0x1010, 4, 200); // 28 B → compacted with PWA
        oc.fill(pwa);
        let o1 = oc.fill(pwb1);
        assert_ne!(o1.placement, PlacementKind::NewLine);
        let pwb2 = entry_at(0x1020, 4, 200); // 28 B: line is 56/62 → no room
        let out = oc.fill(pwb2);
        assert_eq!(out.placement, PlacementKind::Fpwac);
        // All three remain resident: PWB1+PWB2 together, PWA relocated.
        assert!(oc.probe(Addr::new(0x1000)));
        assert!(oc.probe(Addr::new(0x1010)));
        assert!(oc.probe(Addr::new(0x1020)));
        assert_eq!(oc.stats().forced_moves, 1);
        assert_eq!(oc.valid_lines(), 2);
    }

    #[test]
    fn fpwac_falls_back_when_union_too_big() {
        let mut oc = compacting(CompactionPolicy::Fpwac);
        let pwa = entry_at(0x1000, 2, 100); // 14 B
        let pwb1 = entry_at(0x1010, 6, 200); // 42 B → compacted (56/62)
        oc.fill(pwa);
        oc.fill(pwb1);
        let pwb2 = entry_at(0x1020, 6, 200); // 42 B: union 84 > 62
        let out = oc.fill(pwb2);
        assert_ne!(out.placement, PlacementKind::Fpwac);
        assert!(oc.probe(Addr::new(0x1020)));
    }

    #[test]
    fn invalidation_drops_overlapping_entries() {
        let mut oc = baseline();
        oc.fill(entry_at(0x1000, 4, 0)); // line 0x40
        oc.fill(entry_at(0x1040, 4, 1)); // line 0x41
        let n = oc.invalidate_icache_line(Addr::new(0x1000).line());
        assert_eq!(n, 1);
        assert!(!oc.probe(Addr::new(0x1000)));
        assert!(oc.probe(Addr::new(0x1040)));
    }

    #[test]
    fn clasp_invalidation_probes_previous_set() {
        let mut cfg = UopCacheConfig::baseline_2k().with_clasp();
        cfg.compaction = CompactionPolicy::None;
        let mut oc = UopCache::new(cfg);
        // A CLASP entry starting in line 0x40 spanning into line 0x41:
        let mut e = entry_at(0x1030, 8, 0);
        e.end = Addr::new(0x1050);
        oc.fill(e);
        // SMC write to line 0x41 must find and kill it via the prev-set
        // probe.
        let n = oc.invalidate_icache_line(Addr::new(0x1040).line());
        assert_eq!(n, 1);
        assert!(!oc.probe(Addr::new(0x1030)));
    }

    #[test]
    fn flush_all_empties() {
        let mut oc = baseline();
        oc.fill(entry_at(0x1000, 4, 0));
        oc.flush_all();
        assert_eq!(oc.resident_entries(), 0);
        assert_eq!(oc.resident_uops(), 0);
    }

    #[test]
    fn capacity_is_respected() {
        let mut oc = baseline();
        // Fill far beyond capacity with unique max-size entries.
        for i in 0..2000u64 {
            oc.fill(entry_at(0x10_0000 + i * 64, 8, i));
        }
        assert!(oc.resident_uops() <= oc.config().capacity_uops() as u64);
        assert_eq!(oc.valid_lines(), 32 * 8);
    }
}

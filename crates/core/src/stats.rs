//! Uop cache utilization statistics — the raw material of the paper's
//! Figures 5, 6, 9, 12, 18 and 19.

use std::collections::HashMap;

use ucsim_model::{EntryTermination, Histogram};

use crate::{PlacementKind, UopCacheEntry};

/// Counters and distributions maintained by [`crate::UopCache`].
#[derive(Debug, Clone)]
pub struct UopCacheStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Lookup hits.
    pub hits: u64,
    /// Misses where a resident entry *covers* the address but does not
    /// start there (chain-misalignment diagnostic).
    pub interior_misses: u64,
    /// Uops served by hits.
    pub uops_served: u64,
    /// Entries filled (excluding duplicates).
    pub fills: u64,
    /// Fills suppressed because the entry was already resident.
    pub duplicate_fills: u64,
    /// Entries displaced by fills.
    pub evicted_entries: u64,
    /// Entries removed by SMC invalidation probes.
    pub invalidated_entries: u64,
    /// F-PWAC forced moves performed.
    pub forced_moves: u64,
    /// Filled-entry size distribution in bytes: [1–19], [20–39], [40–64]
    /// (Figure 5 buckets).
    pub entry_bytes: Histogram,
    /// Filled-entry uop-count distribution.
    pub entry_uops: Histogram,
    /// Termination-reason counts, indexed by [`EntryTermination::index`].
    pub term_counts: [u64; 8],
    /// Filled entries spanning an I-cache line boundary (Figure 9).
    pub spanning_entries: u64,
    /// Fills placed by each mechanism (Figure 19; `NewLine` = own line).
    pub placement_counts: PlacementCounts,
    /// Per-PW entry counts awaiting histogram flush.
    pw_open: HashMap<u64, u32>,
    /// Distribution of entries per PW: index = count (1,2,3; last bucket
    /// = ≥4) (Figure 12).
    pw_entry_dist: [u64; 4],
}

/// Placement counters (Figure 19 distribution + Figure 18 numerator).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlacementCounts {
    /// Fills that allocated their own line.
    pub new_line: u64,
    /// Fills compacted by RAC.
    pub rac: u64,
    /// Fills compacted by PWAC.
    pub pwac: u64,
    /// Fills compacted by the forced F-PWAC move.
    pub fpwac: u64,
}

impl PlacementCounts {
    /// Total compacted fills (everything except own-line allocations).
    pub fn compacted(&self) -> u64 {
        self.rac + self.pwac + self.fpwac
    }
}

impl Default for UopCacheStats {
    fn default() -> Self {
        Self::new()
    }
}

impl UopCacheStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        UopCacheStats {
            lookups: 0,
            hits: 0,
            interior_misses: 0,
            uops_served: 0,
            fills: 0,
            duplicate_fills: 0,
            evicted_entries: 0,
            invalidated_entries: 0,
            forced_moves: 0,
            entry_bytes: Histogram::new(&[19, 39, 64]),
            entry_uops: Histogram::new(&[1, 2, 3, 4, 5, 6, 7, 8]),
            term_counts: [0; 8],
            spanning_entries: 0,
            placement_counts: PlacementCounts::default(),
            pw_open: HashMap::new(),
            pw_entry_dist: [0; 4],
        }
    }

    /// Resets all counters (warmup boundary).
    pub fn reset(&mut self) {
        *self = Self::new();
    }

    pub(crate) fn note_lookup(&mut self, hit: bool, uops: u64) {
        self.lookups += 1;
        if hit {
            self.hits += 1;
            self.uops_served += uops;
        }
    }

    pub(crate) fn note_interior_miss(&mut self) {
        self.interior_misses += 1;
    }

    pub(crate) fn note_duplicate_fill(&mut self) {
        self.duplicate_fills += 1;
    }

    pub(crate) fn note_forced_move(&mut self) {
        self.forced_moves += 1;
    }

    pub(crate) fn note_invalidation(&mut self, removed: u64) {
        self.invalidated_entries += removed;
    }

    pub(crate) fn note_fill(
        &mut self,
        entry: &UopCacheEntry,
        placement: PlacementKind,
        evicted: usize,
    ) {
        self.fills += 1;
        self.evicted_entries += evicted as u64;
        self.entry_bytes.record(entry.bytes() as u64);
        self.entry_uops.record(entry.uops as u64);
        self.term_counts[entry.term.index()] += 1;
        if entry.spans_boundary() {
            self.spanning_entries += 1;
        }
        match placement {
            PlacementKind::NewLine => self.placement_counts.new_line += 1,
            PlacementKind::Rac => self.placement_counts.rac += 1,
            PlacementKind::Pwac => self.placement_counts.pwac += 1,
            PlacementKind::Fpwac => self.placement_counts.fpwac += 1,
        }
        // Figure 12: attribute this entry to every PW it covers (PW ids
        // are sequential across an entry).
        for pw in entry.first_pw.0..=entry.pw_id.0 {
            *self.pw_open.entry(pw).or_insert(0) += 1;
        }
    }

    /// Hit rate over all lookups.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Fraction of filled entries terminated by a predicted-taken branch
    /// (Figure 6).
    pub fn taken_branch_term_frac(&self) -> f64 {
        if self.fills == 0 {
            0.0
        } else {
            self.term_counts[EntryTermination::TakenBranch.index()] as f64 / self.fills as f64
        }
    }

    /// Fraction of filled entries terminated by each reason.
    pub fn term_frac(&self, reason: EntryTermination) -> f64 {
        if self.fills == 0 {
            0.0
        } else {
            self.term_counts[reason.index()] as f64 / self.fills as f64
        }
    }

    /// Entry-size fractions in the Figure 5 buckets
    /// `([1-19], [20-39], [40-64], >64)`.
    pub fn entry_size_fractions(&self) -> Vec<f64> {
        self.entry_bytes.fractions()
    }

    /// Fraction of filled entries spanning an I-cache line boundary
    /// (Figure 9; nonzero only with CLASP).
    pub fn spanning_frac(&self) -> f64 {
        if self.fills == 0 {
            0.0
        } else {
            self.spanning_entries as f64 / self.fills as f64
        }
    }

    /// Fraction of fills that were compacted into an existing line
    /// (Figure 18's "entries compacted without evicting" metric).
    pub fn compacted_fill_frac(&self) -> f64 {
        if self.fills == 0 {
            0.0
        } else {
            self.placement_counts.compacted() as f64 / self.fills as f64
        }
    }

    /// Distribution of compacted fills across RAC/PWAC/F-PWAC
    /// (Figure 19). Returns `(rac, pwac, fpwac)` fractions of all
    /// compacted fills.
    pub fn compaction_technique_dist(&self) -> (f64, f64, f64) {
        let total = self.placement_counts.compacted();
        if total == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = total as f64;
        (
            self.placement_counts.rac as f64 / t,
            self.placement_counts.pwac as f64 / t,
            self.placement_counts.fpwac as f64 / t,
        )
    }

    /// Finalizes and returns the entries-per-PW distribution (Figure 12):
    /// fractions of PWs that produced 1, 2, 3, ≥4 entries. Call once at
    /// the end of a run.
    pub fn entries_per_pw_dist(&mut self) -> [f64; 4] {
        for (_, count) in self.pw_open.drain() {
            let idx = (count.max(1) as usize - 1).min(3);
            self.pw_entry_dist[idx] += 1;
        }
        let total: u64 = self.pw_entry_dist.iter().sum();
        if total == 0 {
            return [0.0; 4];
        }
        let t = total as f64;
        [
            self.pw_entry_dist[0] as f64 / t,
            self.pw_entry_dist[1] as f64 / t,
            self.pw_entry_dist[2] as f64 / t,
            self.pw_entry_dist[3] as f64 / t,
        ]
    }

    /// Mean bytes of filled entries.
    pub fn mean_entry_bytes(&self) -> f64 {
        self.entry_bytes.mean()
    }

    /// Mean uops per filled entry.
    pub fn mean_entry_uops(&self) -> f64 {
        self.entry_uops.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucsim_model::{Addr, PwId};

    fn entry(uops: u32, imm: u32, term: EntryTermination, pw: (u64, u64)) -> UopCacheEntry {
        UopCacheEntry {
            start: Addr::new(0x1000),
            end: Addr::new(0x1000 + uops as u64 * 4),
            pw_id: PwId(pw.1),
            first_pw: PwId(pw.0),
            uops,
            imm_disp: imm,
            ucoded_insts: 0,
            insts: uops,
            term,
            pc_lines: 1,
            ends_in_taken_branch: term == EntryTermination::TakenBranch,
        }
    }

    #[test]
    fn size_buckets_match_figure5() {
        let mut s = UopCacheStats::new();
        s.note_fill(
            &entry(2, 0, EntryTermination::TakenBranch, (0, 0)),
            PlacementKind::NewLine,
            0,
        ); // 14 B
        s.note_fill(
            &entry(4, 0, EntryTermination::TakenBranch, (1, 1)),
            PlacementKind::NewLine,
            0,
        ); // 28 B
        s.note_fill(
            &entry(8, 1, EntryTermination::MaxUops, (2, 2)),
            PlacementKind::NewLine,
            0,
        ); // 60 B
        let f = s.entry_size_fractions();
        assert!((f[0] - 1.0 / 3.0).abs() < 1e-9);
        assert!((f[1] - 1.0 / 3.0).abs() < 1e-9);
        assert!((f[2] - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn taken_branch_fraction() {
        let mut s = UopCacheStats::new();
        s.note_fill(
            &entry(2, 0, EntryTermination::TakenBranch, (0, 0)),
            PlacementKind::NewLine,
            0,
        );
        s.note_fill(
            &entry(2, 0, EntryTermination::IcacheBoundary, (1, 1)),
            PlacementKind::NewLine,
            0,
        );
        assert!((s.taken_branch_term_frac() - 0.5).abs() < 1e-9);
        assert!((s.term_frac(EntryTermination::IcacheBoundary) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pw_distribution_counts_multi_entry_pws() {
        let mut s = UopCacheStats::new();
        // PW 0 produces two entries; PW 1 produces one; an entry spanning
        // PWs 2-3 counts once for each.
        s.note_fill(
            &entry(2, 0, EntryTermination::MaxUops, (0, 0)),
            PlacementKind::NewLine,
            0,
        );
        s.note_fill(
            &entry(2, 0, EntryTermination::TakenBranch, (0, 0)),
            PlacementKind::NewLine,
            0,
        );
        s.note_fill(
            &entry(2, 0, EntryTermination::TakenBranch, (1, 1)),
            PlacementKind::NewLine,
            0,
        );
        s.note_fill(
            &entry(2, 0, EntryTermination::TakenBranch, (2, 3)),
            PlacementKind::NewLine,
            0,
        );
        let d = s.entries_per_pw_dist();
        // PWs: 0→2 entries, 1→1, 2→1, 3→1 ⇒ 3/4 singles, 1/4 doubles.
        assert!((d[0] - 0.75).abs() < 1e-9, "{d:?}");
        assert!((d[1] - 0.25).abs() < 1e-9, "{d:?}");
    }

    #[test]
    fn compaction_distribution() {
        let mut s = UopCacheStats::new();
        s.note_fill(
            &entry(2, 0, EntryTermination::TakenBranch, (0, 0)),
            PlacementKind::NewLine,
            0,
        );
        s.note_fill(
            &entry(2, 0, EntryTermination::TakenBranch, (1, 1)),
            PlacementKind::Rac,
            0,
        );
        s.note_fill(
            &entry(2, 0, EntryTermination::TakenBranch, (2, 2)),
            PlacementKind::Pwac,
            0,
        );
        s.note_fill(
            &entry(2, 0, EntryTermination::TakenBranch, (3, 3)),
            PlacementKind::Pwac,
            0,
        );
        assert!((s.compacted_fill_frac() - 0.75).abs() < 1e-9);
        let (rac, pwac, fpwac) = s.compaction_technique_dist();
        assert!((rac - 1.0 / 3.0).abs() < 1e-9);
        assert!((pwac - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(fpwac, 0.0);
    }

    #[test]
    fn empty_stats_are_harmless() {
        let mut s = UopCacheStats::new();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.taken_branch_term_frac(), 0.0);
        assert_eq!(s.compacted_fill_frac(), 0.0);
        assert_eq!(s.entries_per_pw_dist(), [0.0; 4]);
        assert_eq!(s.compaction_technique_dist(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn spanning_counted() {
        let mut s = UopCacheStats::new();
        let mut e = entry(8, 0, EntryTermination::MaxUops, (0, 0));
        e.start = Addr::new(0x1030);
        e.end = Addr::new(0x1050);
        e.pc_lines = 2; // a CLASP merge across lines 0x40 and 0x41
        s.note_fill(&e, PlacementKind::NewLine, 0);
        assert_eq!(s.spanning_entries, 1);
        assert!((s.spanning_frac() - 1.0).abs() < 1e-9);
    }
}

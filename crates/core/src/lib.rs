//! # ucsim-uopcache
//!
//! The micro-operation cache — the primary contribution of *"Improving the
//! Utilization of Micro-operation Caches in x86 Processors"* (MICRO 2020),
//! reproduced in full:
//!
//! * **Baseline** (paper Section II-B): a set-associative, byte-addressed
//!   cache of *uop cache entries*. One entry per 64-byte physical line;
//!   entries terminate at I-cache line boundaries, predicted-taken
//!   branches, and per-entry uop / imm-disp / micro-code limits. Indexed
//!   by PW start physical address; per-line true-LRU replacement;
//!   self-modifying-code invalidation by I-cache line probe.
//! * **CLASP** (Section V-A): entries may span two sequential I-cache
//!   lines, eliminating the line-boundary termination for fall-through
//!   code.
//! * **Compaction** (Section V-B): up to 2–3 entries share a physical
//!   line when they fit, allocated by RAC (replacement-aware), PWAC
//!   (prediction-window-aware) or F-PWAC (forced PW-aware) policies.
//!
//! The crate is timing-free: it models *contents* and *events* (hits,
//! fills, evictions, invalidations) and exposes the utilization statistics
//! behind the paper's Figures 5, 6, 9, 12, 18 and 19. Timing lives in
//! `ucsim-pipeline`.
//!
//! # Example
//!
//! ```
//! use ucsim_uopcache::{UopCache, UopCacheConfig};
//! use ucsim_model::{Addr, DynInst, InstClass, PwId};
//! use ucsim_uopcache::AccumulationBuffer;
//!
//! // Build entries from a straight-line code run via the accumulation
//! // buffer, then fill and look them up.
//! let cfg = UopCacheConfig::baseline_2k();
//! let mut oc = UopCache::new(cfg.clone());
//! let mut acc = AccumulationBuffer::new(cfg);
//!
//! let mut completed = Vec::new();
//! for i in 0..16u64 {
//!     let inst = DynInst::simple(Addr::new(0x1000 + i * 4), 4, InstClass::IntAlu);
//!     completed.extend(acc.push(&inst, PwId(0), false));
//! }
//! completed.extend(acc.flush());
//! for e in completed {
//!     oc.fill(e);
//! }
//! assert!(oc.lookup(Addr::new(0x1000)).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod cache;
mod config;
mod entry;
mod line;
mod stats;

pub use builder::{AccumulationBuffer, ClosedEntries};
pub use cache::{FillOutcome, UopCache};
pub use config::{CompactionPolicy, PlacementKind, UopCacheConfig};
pub use entry::UopCacheEntry;
pub use line::UopCacheLine;
pub use stats::UopCacheStats;

//! The accumulation buffer: builds uop cache entries from the decode
//! stream (paper Section II-B2).
//!
//! Decoded uops accumulate until one of the entry termination conditions
//! fires: (a) I-cache line boundary (relaxed by CLASP to
//! `clasp_max_lines` sequential lines), (b) predicted-taken branch,
//! (c) max uops, (d) max imm/disp fields, (e) max micro-coded
//! instructions, (f) physical line byte budget. Front-end redirects flush
//! the buffer.

use ucsim_model::{Addr, DynInst, EntryTermination, PwId, IMM_DISP_BYTES, UOP_BYTES};

use crate::{UopCacheConfig, UopCacheEntry};

#[derive(Debug, Clone)]
struct OpenEntry {
    start: Addr,
    end: Addr,
    first_pw: PwId,
    last_pw: PwId,
    uops: u32,
    imm_disp: u32,
    ucoded: u32,
    insts: u32,
    pc_lines: u32,
}

/// Entries completed by one [`AccumulationBuffer::push`]: at most two
/// (a close forced before the instruction is accepted, plus a
/// predicted-taken close after it), stored inline so the per-instruction
/// accumulate path never touches the heap.
#[derive(Debug, Default)]
pub struct ClosedEntries {
    entries: [Option<UopCacheEntry>; 2],
}

impl ClosedEntries {
    /// Records a close result, if any. Panics (debug) past two closes —
    /// the push state machine cannot produce more.
    fn add(&mut self, e: Option<UopCacheEntry>) {
        if e.is_none() {
            return;
        }
        let slot = self
            .entries
            .iter_mut()
            .find(|s| s.is_none())
            .expect("at most two entries close per push");
        *slot = e;
    }
}

impl ClosedEntries {
    /// Number of completed entries (0, 1, or 2).
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// True when the push completed no entry.
    pub fn is_empty(&self) -> bool {
        self.entries[0].is_none()
    }
}

impl std::ops::Index<usize> for ClosedEntries {
    type Output = UopCacheEntry;

    fn index(&self, i: usize) -> &UopCacheEntry {
        self.entries[i].as_ref().expect("index past closed entries")
    }
}

impl IntoIterator for ClosedEntries {
    type Item = UopCacheEntry;
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<UopCacheEntry>, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter().flatten()
    }
}

/// Accumulates decoded instructions into uop cache entries.
///
/// # Example
///
/// ```
/// use ucsim_model::{Addr, DynInst, InstClass, PwId, EntryTermination};
/// use ucsim_uopcache::{AccumulationBuffer, UopCacheConfig};
///
/// let mut acc = AccumulationBuffer::new(UopCacheConfig::baseline_2k());
/// // Nine 1-uop instructions: the 9th exceeds the 8-uop entry limit and
/// // closes the first entry.
/// let mut out = Vec::new();
/// for i in 0..9u64 {
///     let inst = DynInst::simple(Addr::new(0x1000 + i * 4), 4, InstClass::IntAlu);
///     out.extend(acc.push(&inst, PwId(0), false));
/// }
/// assert_eq!(out.len(), 1);
/// assert_eq!(out[0].uops, 8);
/// assert_eq!(out[0].term, EntryTermination::MaxUops);
/// ```
#[derive(Debug, Clone)]
pub struct AccumulationBuffer {
    cfg: UopCacheConfig,
    open: Option<OpenEntry>,
    uncacheable_insts: u64,
}

impl AccumulationBuffer {
    /// Creates an empty buffer for the given cache geometry.
    pub fn new(cfg: UopCacheConfig) -> Self {
        cfg.validate();
        AccumulationBuffer {
            cfg,
            open: None,
            uncacheable_insts: 0,
        }
    }

    /// Instructions that could never fit an entry by themselves (modeled
    /// as decoder-only / MS-ROM-sequenced; they bypass the uop cache).
    pub fn uncacheable_insts(&self) -> u64 {
        self.uncacheable_insts
    }

    /// True if an entry is currently being accumulated.
    pub fn has_open_entry(&self) -> bool {
        self.open.is_some()
    }

    /// Address the open entry expects next (diagnostics/tests).
    pub fn open_end(&self) -> Option<Addr> {
        self.open.as_ref().map(|o| o.end)
    }

    /// Pushes one decoded instruction.
    ///
    /// `pw_id` is the prediction window the instruction was fetched under;
    /// `predicted_taken` marks the instruction as a predicted-taken branch
    /// (which terminates the entry). Returns zero, one, or (for an
    /// oversized follower) one completed entry; completed entries should
    /// be filled into the [`crate::UopCache`].
    pub fn push(&mut self, inst: &DynInst, pw_id: PwId, predicted_taken: bool) -> ClosedEntries {
        let mut out = ClosedEntries::default();
        let u = (inst.uops as u32).max(1);
        let d = inst.imm_disp as u32;
        let mc = u32::from(inst.microcoded);

        // Control discontinuity safety net: the pipeline flushes on
        // redirects, but a non-sequential push must never extend an entry.
        if let Some(open) = &self.open {
            if inst.pc != open.end {
                out.add(self.close(EntryTermination::Flush));
            }
        }

        // Build-rule ablation: close the open entry when a new prediction
        // window begins (the paper's baseline spans sequential PWs).
        if self.cfg.terminate_at_pw_end {
            if let Some(open) = &self.open {
                if open.last_pw != pw_id {
                    out.add(self.close(EntryTermination::PwBoundary));
                }
            }
        }

        // Would the instruction violate a constraint of the open entry?
        if let Some(open) = &self.open {
            if let Some(reason) = self.violation(open, inst.pc, u, d, mc) {
                out.add(self.close(reason));
            }
        }

        if self.open.is_none() {
            // Open a fresh entry; reject instructions that cannot fit even
            // an empty line (huge MS-ROM flows stay decoder-resident).
            if u > self.cfg.max_uops_per_entry
                || u * UOP_BYTES + d * IMM_DISP_BYTES > self.cfg.entry_byte_budget()
            {
                self.uncacheable_insts += 1;
                return out;
            }
            self.open = Some(OpenEntry {
                start: inst.pc,
                end: inst.pc,
                first_pw: pw_id,
                last_pw: pw_id,
                uops: 0,
                imm_disp: 0,
                ucoded: 0,
                insts: 0,
                pc_lines: 1,
            });
        }

        let open = self.open.as_mut().expect("opened above");
        open.end = inst.end();
        open.uops += u;
        open.imm_disp += d;
        open.ucoded += mc;
        open.insts += 1;
        open.last_pw = pw_id;
        open.pc_lines = open
            .pc_lines
            .max((inst.pc.line().number() - open.start.line().number() + 1) as u32);

        if predicted_taken {
            out.add(self.close(EntryTermination::TakenBranch));
        }
        out
    }

    /// Checks whether adding (`pc`, `u` uops, `d` imm fields, `mc`
    /// micro-coded) to `open` violates a termination condition, returning
    /// the condition. Boundary is checked first, matching the paper's
    /// emphasis on I-cache-boundary termination as the primary fragmenter.
    fn violation(
        &self,
        open: &OpenEntry,
        pc: Addr,
        u: u32,
        d: u32,
        mc: u32,
    ) -> Option<EntryTermination> {
        let lines_after = pc.line().number() - open.start.line().number() + 1;
        let line_limit = if self.cfg.clasp {
            self.cfg.clasp_max_lines as u64
        } else {
            1
        };
        if lines_after > line_limit {
            return Some(EntryTermination::IcacheBoundary);
        }
        if open.uops + u > self.cfg.max_uops_per_entry {
            return Some(EntryTermination::MaxUops);
        }
        if open.imm_disp + d > self.cfg.max_imm_disp_per_entry {
            return Some(EntryTermination::MaxImmDisp);
        }
        if open.ucoded + mc > self.cfg.max_ucoded_per_entry {
            return Some(EntryTermination::MaxMicrocoded);
        }
        if (open.uops + u) * UOP_BYTES + (open.imm_disp + d) * IMM_DISP_BYTES
            > self.cfg.entry_byte_budget()
        {
            return Some(EntryTermination::LineCapacity);
        }
        None
    }

    /// Flushes the open entry (front-end redirect / path switch).
    pub fn flush(&mut self) -> Option<UopCacheEntry> {
        self.close(EntryTermination::Flush)
    }

    fn close(&mut self, reason: EntryTermination) -> Option<UopCacheEntry> {
        let open = self.open.take()?;
        debug_assert!(open.insts > 0, "closing an empty entry");
        Some(UopCacheEntry {
            start: open.start,
            end: open.end,
            pw_id: open.last_pw,
            first_pw: open.first_pw,
            uops: open.uops,
            imm_disp: open.imm_disp,
            ucoded_insts: open.ucoded,
            insts: open.insts,
            term: reason,
            ends_in_taken_branch: reason == EntryTermination::TakenBranch,
            pc_lines: open.pc_lines,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucsim_model::{BranchExec, InstClass};

    fn acc() -> AccumulationBuffer {
        AccumulationBuffer::new(UopCacheConfig::baseline_2k())
    }

    fn clasp_acc() -> AccumulationBuffer {
        AccumulationBuffer::new(UopCacheConfig::baseline_2k().with_clasp())
    }

    fn alu(pc: u64, len: u8) -> DynInst {
        DynInst::simple(Addr::new(pc), len, InstClass::IntAlu)
    }

    fn push_run(acc: &mut AccumulationBuffer, start: u64, n: u64, len: u8) -> Vec<UopCacheEntry> {
        let mut out = Vec::new();
        for i in 0..n {
            out.extend(acc.push(&alu(start + i * len as u64, len), PwId(0), false));
        }
        out
    }

    #[test]
    fn icache_boundary_terminates_baseline() {
        let mut a = acc();
        // 4-byte insts from 0x1030: 4 fit in line 0x40, the 5th starts in
        // the next line — boundary termination (only 4 uops, under limits).
        let out = push_run(&mut a, 0x1030, 5, 4);
        assert_eq!(out.len(), 1);
        let e = &out[0];
        assert_eq!(e.term, EntryTermination::IcacheBoundary);
        assert_eq!(e.uops, 4);
        assert_eq!(e.start, Addr::new(0x1030));
        assert_eq!(e.end, Addr::new(0x1040));
        assert!(!e.spans_boundary());
        // The 5th inst is accumulating in a fresh entry.
        assert!(a.has_open_entry());
        assert_eq!(a.open_end(), Some(Addr::new(0x1044)));
    }

    #[test]
    fn clasp_relaxes_boundary() {
        let mut a = clasp_acc();
        // Same run: with CLASP the entry crosses into the second line and
        // terminates at MaxUops (8) instead.
        let out = push_run(&mut a, 0x1030, 9, 4);
        assert_eq!(out.len(), 1);
        let e = &out[0];
        assert_eq!(e.term, EntryTermination::MaxUops);
        assert_eq!(e.uops, 8);
        assert!(e.spans_boundary());
        assert_eq!(e.lines_spanned(), 2);
    }

    #[test]
    fn clasp_still_limited_to_two_lines() {
        let mut a = clasp_acc();
        // 15-byte insts march across lines quickly; entry must stop when a
        // third line would hold an instruction start (7th inst lands in
        // line 0x42). Instructions are attributed to the line their first
        // byte is in; the final instruction's bytes may spill one line
        // further (handled by the invalidation probe depth).
        let out = push_run(&mut a, 0x1030, 7, 15);
        assert!(!out.is_empty());
        assert_eq!(out[0].uops, 6, "insts starting in lines 0x40-0x41 only");
        assert!(out[0].lines_spanned() <= 3, "{:?}", out[0]);
        assert_eq!(out[0].term, EntryTermination::IcacheBoundary);
    }

    #[test]
    fn taken_branch_terminates() {
        let mut a = acc();
        a.push(&alu(0x1000, 4), PwId(3), false);
        let br = DynInst::branch(
            Addr::new(0x1004),
            2,
            InstClass::CondBranch,
            BranchExec {
                taken: true,
                target: Addr::new(0x2000),
            },
        );
        let out = a.push(&br, PwId(3), true);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].term, EntryTermination::TakenBranch);
        assert!(out[0].ends_in_taken_branch);
        assert_eq!(out[0].insts, 2);
        assert_eq!(out[0].pw_id, PwId(3));
        assert!(!a.has_open_entry());
    }

    #[test]
    fn max_imm_disp_terminates() {
        let mut a = acc();
        for i in 0..4u64 {
            let inst = alu(0x1000 + i * 4, 4).with_imm_disp(1);
            assert!(a.push(&inst, PwId(0), false).is_empty());
        }
        let fifth = alu(0x1010, 4).with_imm_disp(1);
        let out = a.push(&fifth, PwId(0), false);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].term, EntryTermination::MaxImmDisp);
        assert_eq!(out[0].imm_disp, 4);
    }

    #[test]
    fn max_microcoded_terminates() {
        let mut a = acc();
        for i in 0..4u64 {
            let inst = alu(0x1000 + i * 2, 2).with_microcoded(true);
            assert!(a.push(&inst, PwId(0), false).is_empty());
        }
        let fifth = alu(0x1008, 2).with_microcoded(true);
        let out = a.push(&fifth, PwId(0), false);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].term, EntryTermination::MaxMicrocoded);
        assert_eq!(out[0].ucoded_insts, 4);
    }

    #[test]
    fn line_capacity_terminates() {
        let mut a = acc();
        // 2 insts × 3 uops + 2 imm = 42+8 = 50 bytes; third (3 uops 2 imm,
        // 21+8B) would need 79 > 62.
        for i in 0..2u64 {
            let inst = alu(0x1000 + i * 4, 4).with_uops(3).with_imm_disp(2);
            assert!(a.push(&inst, PwId(0), false).is_empty());
        }
        let third = alu(0x1008, 4).with_uops(2).with_imm_disp(1);
        let out = a.push(&third, PwId(0), false);
        assert_eq!(out.len(), 1);
        // 6+2 uops fits, but 4+1 imm fields exceed the limit of 4.
        assert_eq!(out[0].term, EntryTermination::MaxImmDisp);

        // Pure byte capacity: uops only, no imm. 7 insts à 1 uop + one
        // 2-uop = 9 uops > 8 triggers MaxUops first, so byte capacity can
        // only trip via imm bytes with few uops: 6 uops (42B) + 4 imm
        // (16B) = 58; adding 1 uop (7B) = 65 > 62 with imm already at 4.
        let mut b = acc();
        b.push(
            &alu(0x2000, 4).with_uops(3).with_imm_disp(2),
            PwId(0),
            false,
        );
        assert!(b
            .push(
                &alu(0x2004, 4).with_uops(2).with_imm_disp(2),
                PwId(0),
                false
            )
            .is_empty());
        // Now 5 uops (35B) + 4 imm (16B) = 51B.
        let filler = alu(0x2008, 4).with_uops(1).with_imm_disp(0);
        let out = b.push(&filler, PwId(0), false);
        assert!(out.is_empty(), "6 uops + 4 imm = 58B fits");
        // 6 uops + 4 imm = 58B resident; one more uop ⇒ 65 > 62.
        let overflow = alu(0x200c, 4).with_uops(1).with_imm_disp(0);
        let out = b.push(&overflow, PwId(0), false);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].term, EntryTermination::LineCapacity);
    }

    #[test]
    fn flush_closes_open_entry() {
        let mut a = acc();
        a.push(&alu(0x1000, 4), PwId(0), false);
        let e = a.flush().expect("open entry");
        assert_eq!(e.term, EntryTermination::Flush);
        assert!(a.flush().is_none());
    }

    #[test]
    fn discontinuity_closes_with_flush() {
        let mut a = acc();
        a.push(&alu(0x1000, 4), PwId(0), false);
        let out = a.push(&alu(0x2000, 4), PwId(1), false);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].term, EntryTermination::Flush);
        assert!(a.has_open_entry());
    }

    #[test]
    fn oversized_instruction_is_uncacheable() {
        let mut a = acc();
        // 8 uops with 2 imm fields: 56 + 8 = 64 > 62 budget.
        let big = alu(0x1000, 15).with_uops(8).with_imm_disp(2);
        let out = a.push(&big, PwId(0), false);
        assert!(out.is_empty());
        assert!(!a.has_open_entry());
        assert_eq!(a.uncacheable_insts(), 1);
        // Following instruction starts a normal entry.
        let out = a.push(&alu(0x100f, 4), PwId(0), false);
        assert!(out.is_empty());
        assert!(a.has_open_entry());
    }

    #[test]
    fn entries_span_sequential_pws() {
        let mut a = acc();
        a.push(&alu(0x1000, 4), PwId(5), false);
        a.push(&alu(0x1004, 4), PwId(6), false);
        let e = a.flush().unwrap();
        assert_eq!(e.first_pw, PwId(5));
        assert_eq!(e.pw_id, PwId(6));
    }

    #[test]
    fn entry_bytes_match_contents() {
        let mut a = acc();
        a.push(
            &alu(0x1000, 4).with_uops(2).with_imm_disp(1),
            PwId(0),
            false,
        );
        a.push(&alu(0x1004, 4).with_uops(1), PwId(0), false);
        let e = a.flush().unwrap();
        assert_eq!(e.uops, 3);
        assert_eq!(e.imm_disp, 1);
        assert_eq!(e.bytes(), 3 * 7 + 4);
        assert_eq!(e.insts, 2);
    }
}

#[cfg(test)]
mod pw_end_tests {
    use super::*;
    use ucsim_model::InstClass;

    fn alu(pc: u64, len: u8) -> DynInst {
        DynInst::simple(Addr::new(pc), len, InstClass::IntAlu)
    }

    /// With the ablation on, a PW change closes the open entry even when
    /// control flow is sequential.
    #[test]
    fn pw_boundary_terminates_when_enabled() {
        let cfg = UopCacheConfig::baseline_2k().with_pw_end_termination();
        let mut acc = AccumulationBuffer::new(cfg);
        assert!(acc.push(&alu(0x1000, 4), PwId(0), false).is_empty());
        assert!(acc.push(&alu(0x1004, 4), PwId(0), false).is_empty());
        let out = acc.push(&alu(0x1008, 4), PwId(1), false);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].term, EntryTermination::PwBoundary);
        assert_eq!(out[0].insts, 2);
        assert_eq!(out[0].pw_id, PwId(0));
        // The third instruction opened a fresh entry under PW 1.
        let e = acc.flush().unwrap();
        assert_eq!(e.first_pw, PwId(1));
    }

    /// The paper's baseline spans sequential PWs: same input, no cut.
    #[test]
    fn baseline_spans_pws() {
        let mut acc = AccumulationBuffer::new(UopCacheConfig::baseline_2k());
        acc.push(&alu(0x1000, 4), PwId(0), false);
        acc.push(&alu(0x1004, 4), PwId(0), false);
        assert!(acc.push(&alu(0x1008, 4), PwId(1), false).is_empty());
        let e = acc.flush().unwrap();
        assert_eq!(e.insts, 3);
        assert_eq!(e.first_pw, PwId(0));
        assert_eq!(e.pw_id, PwId(1));
    }
}

//! # ucsim-bpu
//!
//! Branch prediction and decoupled fetch substrate: a TAGE conditional
//! predictor (Table I cites Seznec's TAGE), a two-level BTB with two
//! branches per entry, a return-address stack, and the **prediction window
//! (PW) generator** that turns the architecturally-correct instruction
//! stream into the PW stream a decoupled front end fetches from
//! (paper Section II-A).
//!
//! PW termination rules implemented exactly as described: a PW ends at the
//! 64-byte I-cache line end, at a predicted-taken branch, or after a
//! maximum number of predicted not-taken branches. Mispredicted branches
//! (direction, target, or BTB-miss redirects) also terminate the PW and
//! are flagged so the pipeline can charge resolution latency.
//!
//! # Example
//!
//! ```
//! use ucsim_bpu::{BpuConfig, PwGenerator};
//! use ucsim_model::{Addr, DynInst, InstClass};
//!
//! let insts = vec![
//!     DynInst::simple(Addr::new(0x1000), 4, InstClass::IntAlu),
//!     DynInst::simple(Addr::new(0x1004), 4, InstClass::IntAlu),
//! ];
//! let mut gen = PwGenerator::new(BpuConfig::default(), insts.into_iter());
//! let batch = gen.advance().expect("one window");
//! assert_eq!(batch.pw.start, Addr::new(0x1000));
//! assert_eq!(batch.insts.len(), 2);
//! ```
//!
//! [`PwBatchRef`]es borrow the generator's internal storage; copy out what
//! must outlive the next `advance` call.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btb;
mod config;
mod pwgen;
mod ras;
mod tage;

pub use btb::{BranchKind, Btb, BtbStats};
pub use config::BpuConfig;
pub use pwgen::{BpuStats, Mispredict, PwBatchRef, PwGenerator, PwSpan, SlicePwGen};
pub use ras::ReturnAddressStack;
pub use tage::{Tage, TageConfig, TageStats};

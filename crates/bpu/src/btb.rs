//! Two-level branch target buffer with two branches per entry (Table I).
//!
//! Entries are keyed by 32-byte fetch block; each entry tracks up to two
//! branches inside the block (offset, kind, last target). A miss in the
//! first level that hits in the second promotes the entry and costs the
//! front end a small bubble; a miss in both levels means a taken branch is
//! discovered only at decode, a larger bubble.

use ucsim_model::Addr;

/// Static classification of a branch for the BTB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchKind {
    /// Conditional direct.
    Conditional,
    /// Unconditional direct jump.
    Direct,
    /// Indirect jump.
    Indirect,
    /// Call (pushes RAS).
    Call,
    /// Return (pops RAS).
    Ret,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BtbBranch {
    pc: Addr,
    kind: BranchKind,
    target: Addr,
}

#[derive(Debug, Clone, Copy)]
struct BtbEntry {
    /// 32-byte block number this entry covers.
    block: u64,
    /// Up to two branches, kept in program order; only the first
    /// `n_branches` slots are live. Inline storage: entries are created
    /// and evicted continuously in steady state, so they must not own
    /// heap memory.
    branches: [BtbBranch; BRANCHES_PER_ENTRY],
    n_branches: u8,
    lru: u64,
}

impl BtbEntry {
    fn branches(&self) -> &[BtbBranch] {
        &self.branches[..self.n_branches as usize]
    }

    fn branches_mut(&mut self) -> &mut [BtbBranch] {
        &mut self.branches[..self.n_branches as usize]
    }
}

/// Counters for one BTB level pair.
#[derive(Debug, Clone, Copy, Default)]
pub struct BtbStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Hits in L1.
    pub l1_hits: u64,
    /// Hits in L2 (L1 miss).
    pub l2_hits: u64,
    /// Complete misses.
    pub misses: u64,
    /// Target mispredictions reported by callers (indirects).
    pub target_mispredicts: u64,
}

/// Result of a BTB lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BtbOutcome {
    /// Found in the first level: no bubble.
    L1Hit,
    /// Found in the second level: small promotion bubble.
    L2Hit,
    /// Unknown branch: discovered at decode.
    Miss,
}

const BLOCK_SHIFT: u32 = 5; // 32-byte blocks
const BRANCHES_PER_ENTRY: usize = 2;

/// The two-level BTB.
///
/// # Example
///
/// ```
/// use ucsim_bpu::{Btb, BranchKind};
/// use ucsim_model::Addr;
///
/// let mut btb = Btb::new(9, 4, 12, 8);
/// let pc = Addr::new(0x1004);
/// assert!(btb.predict_target(pc).is_none());
/// btb.update(pc, BranchKind::Direct, Addr::new(0x2000));
/// assert_eq!(btb.predict_target(pc), Some(Addr::new(0x2000)));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    l1: Vec<Vec<BtbEntry>>,
    l2: Vec<Vec<BtbEntry>>,
    l1_sets: usize,
    l2_sets: usize,
    l1_ways: usize,
    l2_ways: usize,
    clock: u64,
    stats: BtbStats,
}

impl Btb {
    /// Creates a BTB with `2^l1_set_bits × l1_ways` L1 entries and
    /// `2^l2_set_bits × l2_ways` L2 entries.
    pub fn new(l1_set_bits: u32, l1_ways: usize, l2_set_bits: u32, l2_ways: usize) -> Self {
        assert!(l1_ways > 0 && l2_ways > 0, "BTB needs at least one way");
        let l1_sets = 1usize << l1_set_bits;
        let l2_sets = 1usize << l2_set_bits;
        // Set vectors are pre-sized to their way count: entries churn
        // continuously once the predictor warms, and growing a cold set
        // mid-run would be a steady-state allocation.
        Btb {
            l1: (0..l1_sets).map(|_| Vec::with_capacity(l1_ways)).collect(),
            l2: (0..l2_sets).map(|_| Vec::with_capacity(l2_ways)).collect(),
            l1_sets,
            l2_sets,
            l1_ways,
            l2_ways,
            clock: 0,
            stats: BtbStats::default(),
        }
    }

    /// Default geometry: 2K-entry L1 (512 sets × 4), 16K-entry L2.
    pub fn with_default_geometry() -> Self {
        Btb::new(9, 4, 12, 4)
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> BtbStats {
        self.stats
    }

    /// Resets counters (not contents).
    pub fn reset_stats(&mut self) {
        self.stats = BtbStats::default();
    }

    fn block_of(pc: Addr) -> u64 {
        pc.get() >> BLOCK_SHIFT
    }

    /// Looks up the branch at `pc`, promoting L2 hits into L1.
    /// Returns the level outcome and the stored target, if any.
    pub fn lookup(&mut self, pc: Addr) -> (BtbOutcome, Option<Addr>) {
        self.stats.lookups += 1;
        self.clock += 1;
        let block = Self::block_of(pc);
        let clock = self.clock;

        let l1_set = (block as usize) & (self.l1_sets - 1);
        if let Some(e) = self.l1[l1_set].iter_mut().find(|e| e.block == block) {
            e.lru = clock;
            if let Some(b) = e.branches().iter().find(|b| b.pc == pc) {
                self.stats.l1_hits += 1;
                return (BtbOutcome::L1Hit, Some(b.target));
            }
        }

        let l2_set = (block as usize) & (self.l2_sets - 1);
        let found = self.l2[l2_set]
            .iter_mut()
            .find(|e| e.block == block)
            .and_then(|e| {
                e.lru = clock;
                e.branches().iter().find(|b| b.pc == pc).copied()
            });
        if let Some(b) = found {
            self.stats.l2_hits += 1;
            // Promote the whole block entry into L1.
            self.insert_level1(b);
            return (BtbOutcome::L2Hit, Some(b.target));
        }

        self.stats.misses += 1;
        (BtbOutcome::Miss, None)
    }

    /// Predicted target without updating stats or recency (peek).
    pub fn predict_target(&self, pc: Addr) -> Option<Addr> {
        let block = Self::block_of(pc);
        let l1_set = (block as usize) & (self.l1_sets - 1);
        if let Some(e) = self.l1[l1_set].iter().find(|e| e.block == block) {
            if let Some(b) = e.branches().iter().find(|b| b.pc == pc) {
                return Some(b.target);
            }
        }
        let l2_set = (block as usize) & (self.l2_sets - 1);
        self.l2[l2_set]
            .iter()
            .find(|e| e.block == block)
            .and_then(|e| e.branches().iter().find(|b| b.pc == pc))
            .map(|b| b.target)
    }

    /// Installs/updates the branch at `pc` with its latest `target` in both
    /// levels (write-through training on every executed branch).
    pub fn update(&mut self, pc: Addr, kind: BranchKind, target: Addr) {
        self.clock += 1;
        let b = BtbBranch { pc, kind, target };
        self.insert_level1(b);
        self.insert_level2(b);
    }

    /// Records an indirect-target misprediction (bookkeeping for MPKI).
    pub fn note_target_mispredict(&mut self) {
        self.stats.target_mispredicts += 1;
    }

    fn insert_level1(&mut self, b: BtbBranch) {
        let block = Self::block_of(b.pc);
        let set = (block as usize) & (self.l1_sets - 1);
        let ways = self.l1_ways;
        let clock = self.clock;
        Self::insert_into(&mut self.l1[set], b, block, ways, clock);
    }

    fn insert_level2(&mut self, b: BtbBranch) {
        let block = Self::block_of(b.pc);
        let set = (block as usize) & (self.l2_sets - 1);
        let ways = self.l2_ways;
        let clock = self.clock;
        Self::insert_into(&mut self.l2[set], b, block, ways, clock);
    }

    fn insert_into(set: &mut Vec<BtbEntry>, b: BtbBranch, block: u64, ways: usize, clock: u64) {
        if let Some(e) = set.iter_mut().find(|e| e.block == block) {
            e.lru = clock;
            if let Some(slot) = e.branches_mut().iter_mut().find(|x| x.pc == b.pc) {
                slot.target = b.target;
                slot.kind = b.kind;
            } else if (e.n_branches as usize) < BRANCHES_PER_ENTRY {
                e.branches[e.n_branches as usize] = b;
                e.n_branches += 1;
                e.branches_mut().sort_by_key(|x| x.pc);
            } else {
                // Two branches per entry (Table I): displace the later one.
                e.branches[BRANCHES_PER_ENTRY - 1] = b;
                e.branches_mut().sort_by_key(|x| x.pc);
            }
            return;
        }
        let entry = BtbEntry {
            block,
            branches: [b; BRANCHES_PER_ENTRY],
            n_branches: 1,
            lru: clock,
        };
        if set.len() < ways {
            set.push(entry);
        } else {
            // Evict LRU entry.
            let (victim, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .expect("non-empty set");
            set[victim] = entry;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_train_then_l1_hit() {
        let mut btb = Btb::new(4, 2, 6, 2);
        let pc = Addr::new(0x100);
        assert_eq!(btb.lookup(pc).0, BtbOutcome::Miss);
        btb.update(pc, BranchKind::Direct, Addr::new(0x800));
        let (o, t) = btb.lookup(pc);
        assert_eq!(o, BtbOutcome::L1Hit);
        assert_eq!(t, Some(Addr::new(0x800)));
    }

    #[test]
    fn l2_backstop_and_promotion() {
        let mut btb = Btb::new(2, 1, 8, 4); // tiny L1: 4 sets x 1 way
        let pc = Addr::new(0x100);
        btb.update(pc, BranchKind::Direct, Addr::new(0x800));
        // Evict from L1 by training conflicting blocks (same L1 set).
        for i in 1..=4u64 {
            btb.update(
                Addr::new(0x100 + i * 4 * 32),
                BranchKind::Direct,
                Addr::new(0x900),
            );
        }
        let (o, t) = btb.lookup(pc);
        assert_eq!(o, BtbOutcome::L2Hit);
        assert_eq!(t, Some(Addr::new(0x800)));
        // Promoted: next lookup hits L1.
        assert_eq!(btb.lookup(pc).0, BtbOutcome::L1Hit);
    }

    #[test]
    fn two_branches_share_a_block() {
        let mut btb = Btb::new(4, 2, 6, 2);
        let a = Addr::new(0x200); // block 0x10
        let b = Addr::new(0x210); // same 32B block
        btb.update(a, BranchKind::Conditional, Addr::new(0x300));
        btb.update(b, BranchKind::Direct, Addr::new(0x400));
        assert_eq!(btb.predict_target(a), Some(Addr::new(0x300)));
        assert_eq!(btb.predict_target(b), Some(Addr::new(0x400)));
    }

    #[test]
    fn third_branch_displaces_second() {
        let mut btb = Btb::new(4, 2, 6, 2);
        let a = Addr::new(0x200);
        let b = Addr::new(0x208);
        let c = Addr::new(0x210);
        btb.update(a, BranchKind::Conditional, Addr::new(0x300));
        btb.update(b, BranchKind::Conditional, Addr::new(0x400));
        btb.update(c, BranchKind::Conditional, Addr::new(0x500));
        assert_eq!(btb.predict_target(a), Some(Addr::new(0x300)));
        assert_eq!(btb.predict_target(c), Some(Addr::new(0x500)));
        assert_eq!(btb.predict_target(b), None, "displaced by third branch");
    }

    #[test]
    fn target_update_for_indirect() {
        let mut btb = Btb::new(4, 2, 6, 2);
        let pc = Addr::new(0x340);
        btb.update(pc, BranchKind::Indirect, Addr::new(0x1000));
        btb.update(pc, BranchKind::Indirect, Addr::new(0x2000));
        assert_eq!(btb.predict_target(pc), Some(Addr::new(0x2000)));
    }

    #[test]
    fn stats_track_levels() {
        let mut btb = Btb::new(4, 2, 6, 2);
        let pc = Addr::new(0x100);
        btb.lookup(pc); // miss
        btb.update(pc, BranchKind::Direct, Addr::new(0x800));
        btb.lookup(pc); // l1 hit
        let s = btb.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.misses, 1);
        assert_eq!(s.l1_hits, 1);
    }
}

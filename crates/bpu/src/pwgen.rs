//! The prediction-window generator: the heart of the decoupled front end.
//!
//! Consumes the architecturally-correct dynamic instruction stream and
//! produces [`PwBatch`]es — prediction windows plus the instructions they
//! cover and any branch-prediction events attached to them. The pipeline
//! (in `ucsim-pipeline`) consumes batches; the uop cache is indexed by PW
//! start addresses exactly as the paper describes (Section II-B3).
//!
//! ## Wrong-path modeling
//!
//! Like the paper's own trace-driven simulator, we cannot fetch wrong
//! paths. A mispredicted branch terminates its PW with
//! [`PwTermination::Redirect`] and carries a [`Mispredict`] marker; the
//! pipeline stalls uop supply past the branch until it resolves in the
//! back end, which reproduces the *latency* effect of the flush (this is
//! the effect measured in the paper's Figure 4/17 misprediction-latency
//! curves).

use ucsim_model::{Addr, DynInst, InstClass, PredictionWindow, PwId, PwTermination};

use crate::btb::BtbOutcome;
use crate::{BpuConfig, BranchKind, Btb, ReturnAddressStack, Tage};

/// A misprediction attached to the final branch of a PW.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mispredict {
    /// Direction mispredict of a conditional branch.
    Direction,
    /// Target mispredict (indirect jump or return).
    Target,
}

/// Counters for the whole BPU + PW generation.
#[derive(Debug, Clone, Copy, Default)]
pub struct BpuStats {
    /// Dynamic instructions consumed.
    pub insts: u64,
    /// PWs emitted.
    pub pws: u64,
    /// Conditional branches seen.
    pub cond_branches: u64,
    /// Actually-taken branches (any kind).
    pub taken_branches: u64,
    /// Conditional direction mispredictions.
    pub direction_mispredicts: u64,
    /// Indirect/return target mispredictions.
    pub target_mispredicts: u64,
    /// Taken branches discovered only at decode (BTB miss).
    pub decode_redirects: u64,
}

impl BpuStats {
    /// Branch mispredictions (direction + target) per kilo-instruction —
    /// the Table II metric.
    pub fn mpki(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            (self.direction_mispredicts + self.target_mispredicts) as f64 / self.insts as f64
                * 1000.0
        }
    }
}

/// All predictor state plus the per-window event flags, shared by the
/// iterator-driven [`PwGenerator`] and the slice-driven [`SlicePwGen`] so
/// both walk the exact same state machine.
#[derive(Debug)]
struct PredictorCore {
    cfg: BpuConfig,
    tage: Tage,
    btb: Btb,
    ras: ReturnAddressStack,
    stats: BpuStats,
    /// Taken branch discovered only at decode (BTB miss), this window.
    decode_redirect: bool,
    /// BTB L2→L1 promotion bubble, this window.
    btb_promote: bool,
}

/// How one instruction step affects the window being built.
enum StepOutcome {
    /// Keep extending the window.
    Continue,
    /// The window ends at this instruction.
    End {
        termination: PwTermination,
        ends_taken: bool,
        mispredict: Option<Mispredict>,
    },
}

/// The generator. Wraps the trace iterator and all predictor state.
///
/// # Example
///
/// ```
/// use ucsim_bpu::{BpuConfig, PwGenerator};
/// use ucsim_model::{Addr, BranchExec, DynInst, InstClass};
///
/// // Two insts then a taken branch: one PW ending in the branch.
/// let insts = vec![
///     DynInst::simple(Addr::new(0x1000), 4, InstClass::IntAlu),
///     DynInst::branch(Addr::new(0x1004), 2, InstClass::JumpDirect,
///                     BranchExec { taken: true, target: Addr::new(0x2000) }),
///     DynInst::simple(Addr::new(0x2000), 4, InstClass::IntAlu),
/// ];
/// let mut gen = PwGenerator::new(BpuConfig::default(), insts.into_iter());
/// let b = gen.advance().unwrap();
/// assert!(b.pw.ends_in_taken_branch);
/// assert_eq!(b.insts.len(), 2);
/// let b2 = gen.advance().unwrap();
/// assert_eq!(b2.pw.start, Addr::new(0x2000));
/// ```
#[derive(Debug)]
pub struct PwGenerator<I: Iterator<Item = DynInst>> {
    core: PredictorCore,
    src: I,
    pending: Option<DynInst>,
    seq: u64,
    next_pw_id: u64,
    batch: BatchStorage,
}

/// Reused storage for the current batch.
#[derive(Debug, Clone)]
struct BatchStorage {
    insts: Vec<DynInst>,
    pw: PredictionWindow,
    mispredict: Option<Mispredict>,
    decode_redirect: bool,
    btb_promote: bool,
}

/// Borrowed view of the current batch (valid until the next `advance`).
#[derive(Debug)]
pub struct PwBatchRef<'a> {
    /// The window descriptor.
    pub pw: PredictionWindow,
    /// Instructions in fetch order.
    pub insts: &'a [DynInst],
    /// Misprediction on the final branch, if any.
    pub mispredict: Option<Mispredict>,
    /// Taken branch discovered only at decode (BTB miss in both levels).
    pub decode_redirect: bool,
    /// BTB L2→L1 promotion bubble.
    pub btb_promote: bool,
}

impl PredictorCore {
    fn new(cfg: BpuConfig) -> Self {
        PredictorCore {
            tage: Tage::new(cfg.tage.clone()),
            btb: Btb::new(
                cfg.btb_l1_set_bits,
                cfg.btb_l1_ways,
                cfg.btb_l2_set_bits,
                cfg.btb_l2_ways,
            ),
            ras: ReturnAddressStack::new(cfg.ras_depth),
            cfg,
            stats: BpuStats::default(),
            decode_redirect: false,
            btb_promote: false,
        }
    }

    fn reset_stats(&mut self) {
        self.stats = BpuStats::default();
        self.tage.reset_stats();
        self.btb.reset_stats();
    }

    /// One instruction's effect on the window being built: branch
    /// prediction/training if it is a branch, then the I-cache line
    /// boundary check. `pw_line_end` is the line boundary the window may
    /// not cross; `nt_count` counts correctly-predicted not-taken
    /// branches in this window.
    #[inline]
    fn step(&mut self, cur: &DynInst, pw_line_end: Addr, nt_count: &mut u32) -> StepOutcome {
        self.stats.insts += 1;
        if let Some(exec) = cur.branch {
            if exec.taken {
                self.stats.taken_branches += 1;
            }
            match self.process_branch(cur, exec.taken, exec.target, nt_count) {
                BranchVerdict::Continue => {
                    // Correctly-predicted not-taken branch: PW goes on
                    // unless the NT budget is exhausted.
                    if *nt_count >= self.cfg.max_not_taken_per_pw {
                        return StepOutcome::End {
                            termination: PwTermination::MaxNotTakenBranches,
                            ends_taken: false,
                            mispredict: None,
                        };
                    }
                }
                BranchVerdict::PredictedTaken => {
                    return StepOutcome::End {
                        termination: PwTermination::TakenBranch,
                        ends_taken: true,
                        mispredict: None,
                    };
                }
                BranchVerdict::Mispredicted {
                    believed_taken,
                    kind,
                } => {
                    return StepOutcome::End {
                        termination: PwTermination::Redirect,
                        ends_taken: believed_taken,
                        mispredict: Some(kind),
                    };
                }
            }
        }
        // I-cache line boundary check (paper Figure 2): the PW never
        // proceeds past the end of the line it started in.
        if cur.end().get() >= pw_line_end.get() {
            return StepOutcome::End {
                termination: PwTermination::IcacheLineEnd,
                ends_taken: false,
                mispredict: None,
            };
        }
        StepOutcome::Continue
    }
}

impl<I: Iterator<Item = DynInst>> PwGenerator<I> {
    /// Creates a generator over the given correct-path instruction stream.
    pub fn new(cfg: BpuConfig, src: I) -> Self {
        PwGenerator {
            core: PredictorCore::new(cfg),
            src,
            pending: None,
            seq: 0,
            next_pw_id: 0,
            batch: BatchStorage {
                insts: Vec::with_capacity(32),
                pw: PredictionWindow {
                    id: PwId(0),
                    start: Addr::new(0),
                    end: Addr::new(0),
                    first_seq: 0,
                    inst_count: 0,
                    termination: PwTermination::Redirect,
                    ends_in_taken_branch: false,
                },
                mispredict: None,
                decode_redirect: false,
                btb_promote: false,
            },
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> BpuStats {
        self.core.stats
    }

    /// Resets counters (not predictor state) at the warmup boundary.
    pub fn reset_stats(&mut self) {
        self.core.reset_stats();
    }

    /// Underlying TAGE statistics.
    pub fn tage_stats(&self) -> crate::TageStats {
        self.core.tage.stats()
    }

    /// Underlying BTB statistics.
    pub fn btb_stats(&self) -> crate::BtbStats {
        self.core.btb.stats()
    }

    fn take_next(&mut self) -> Option<DynInst> {
        self.pending.take().or_else(|| self.src.next())
    }

    /// Produces the next prediction window, or `None` at trace end.
    pub fn advance(&mut self) -> Option<PwBatchRef<'_>> {
        let first = self.take_next()?;
        self.batch.insts.clear();
        self.core.decode_redirect = false;
        self.core.btb_promote = false;

        let pw_line_end = first.pc.line().end();
        let first_seq = self.seq;
        let termination;
        let mut ends_taken = false;
        let mut mispredict = None;
        let mut nt_count = 0u32;
        let mut cur = first;

        loop {
            self.seq += 1;
            self.batch.insts.push(cur);
            match self.core.step(&cur, pw_line_end, &mut nt_count) {
                StepOutcome::Continue => {}
                StepOutcome::End {
                    termination: t,
                    ends_taken: et,
                    mispredict: m,
                } => {
                    termination = t;
                    ends_taken = et;
                    mispredict = m;
                    break;
                }
            }
            match self.take_next() {
                Some(next) => {
                    debug_assert_eq!(
                        next.pc,
                        cur.end(),
                        "non-branch instructions must be sequential"
                    );
                    cur = next;
                }
                None => {
                    termination = PwTermination::Redirect;
                    break;
                }
            }
        }

        let last = *self.batch.insts.last().expect("at least one inst");
        self.batch.mispredict = mispredict;
        self.batch.decode_redirect = self.core.decode_redirect;
        self.batch.btb_promote = self.core.btb_promote;
        self.batch.pw = PredictionWindow {
            id: PwId(self.next_pw_id),
            start: first.pc,
            end: last.end(),
            first_seq,
            inst_count: self.batch.insts.len() as u32,
            termination,
            ends_in_taken_branch: ends_taken,
        };
        self.next_pw_id += 1;
        self.core.stats.pws += 1;

        Some(PwBatchRef {
            pw: self.batch.pw,
            insts: &self.batch.insts,
            mispredict: self.batch.mispredict,
            decode_redirect: self.batch.decode_redirect,
            btb_promote: self.batch.btb_promote,
        })
    }
}

/// A prediction window described as an index range into a shared
/// instruction slice — the zero-copy counterpart of [`PwBatchRef`].
///
/// Produced by [`SlicePwGen::advance`]; `&insts[start..end]` are the
/// instructions the window covers, in fetch order.
#[derive(Debug, Clone, Copy)]
pub struct PwSpan {
    /// The window descriptor.
    pub pw: PredictionWindow,
    /// Index of the first covered instruction.
    pub start: usize,
    /// One past the last covered instruction.
    pub end: usize,
    /// Misprediction on the final branch, if any.
    pub mispredict: Option<Mispredict>,
    /// Taken branch discovered only at decode (BTB miss in both levels).
    pub decode_redirect: bool,
    /// BTB L2→L1 promotion bubble.
    pub btb_promote: bool,
}

/// Slice-driven PW generator: the same predictor state machine as
/// [`PwGenerator`], but over a borrowed `&[DynInst]` with index-range
/// output. This is the hot-path variant — no per-instruction copies into
/// batch storage, and downstream consumers index the shared slice
/// directly.
///
/// Byte-identical to [`PwGenerator`] over the same instructions: both
/// drive the same private `PredictorCore::step` state machine, so
/// predictor training, stats, and window boundaries are exactly the
/// same.
#[derive(Debug)]
pub struct SlicePwGen<'a> {
    core: PredictorCore,
    insts: &'a [DynInst],
    pos: usize,
    next_pw_id: u64,
}

impl<'a> SlicePwGen<'a> {
    /// Creates a generator over the given correct-path instruction slice.
    pub fn new(cfg: BpuConfig, insts: &'a [DynInst]) -> Self {
        SlicePwGen {
            core: PredictorCore::new(cfg),
            insts,
            pos: 0,
            next_pw_id: 0,
        }
    }

    /// The underlying instruction slice (windows index into it).
    pub fn insts(&self) -> &'a [DynInst] {
        self.insts
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> BpuStats {
        self.core.stats
    }

    /// Resets counters (not predictor state) at the warmup boundary.
    pub fn reset_stats(&mut self) {
        self.core.reset_stats();
    }

    /// Underlying TAGE statistics.
    pub fn tage_stats(&self) -> crate::TageStats {
        self.core.tage.stats()
    }

    /// Underlying BTB statistics.
    pub fn btb_stats(&self) -> crate::BtbStats {
        self.core.btb.stats()
    }

    /// Borrowed-batch view of `span` (for consumers written against
    /// [`PwBatchRef`]).
    pub fn batch_for(&self, span: &PwSpan) -> PwBatchRef<'a> {
        PwBatchRef {
            pw: span.pw,
            insts: &self.insts[span.start..span.end],
            mispredict: span.mispredict,
            decode_redirect: span.decode_redirect,
            btb_promote: span.btb_promote,
        }
    }

    /// Produces the next prediction window, or `None` at slice end.
    pub fn advance(&mut self) -> Option<PwSpan> {
        let first = *self.insts.get(self.pos)?;
        self.core.decode_redirect = false;
        self.core.btb_promote = false;

        let start = self.pos;
        let pw_line_end = first.pc.line().end();
        let termination;
        let mut ends_taken = false;
        let mut mispredict = None;
        let mut nt_count = 0u32;
        let mut cur = first;

        loop {
            self.pos += 1;
            match self.core.step(&cur, pw_line_end, &mut nt_count) {
                StepOutcome::Continue => {}
                StepOutcome::End {
                    termination: t,
                    ends_taken: et,
                    mispredict: m,
                } => {
                    termination = t;
                    ends_taken = et;
                    mispredict = m;
                    break;
                }
            }
            match self.insts.get(self.pos) {
                Some(&next) => {
                    debug_assert_eq!(
                        next.pc,
                        cur.end(),
                        "non-branch instructions must be sequential"
                    );
                    cur = next;
                }
                None => {
                    termination = PwTermination::Redirect;
                    break;
                }
            }
        }

        let end = self.pos;
        let pw = PredictionWindow {
            id: PwId(self.next_pw_id),
            start: first.pc,
            end: cur.end(),
            first_seq: start as u64,
            inst_count: (end - start) as u32,
            termination,
            ends_in_taken_branch: ends_taken,
        };
        self.next_pw_id += 1;
        self.core.stats.pws += 1;

        Some(PwSpan {
            pw,
            start,
            end,
            mispredict,
            decode_redirect: self.core.decode_redirect,
            btb_promote: self.core.btb_promote,
        })
    }
}

impl PredictorCore {
    fn process_branch(
        &mut self,
        inst: &DynInst,
        actual_taken: bool,
        actual_target: Addr,
        nt_count: &mut u32,
    ) -> BranchVerdict {
        let pc = inst.pc;
        let fallthrough = inst.end();
        match inst.class {
            InstClass::CondBranch => {
                self.stats.cond_branches += 1;
                let pred = self.tage.predict(pc);
                self.tage.update(pc, actual_taken, pred);
                let (btb_outcome, _) = self.btb.lookup(pc);
                self.btb.update(pc, BranchKind::Conditional, actual_target);
                if pred != actual_taken {
                    self.stats.direction_mispredicts += 1;
                    return BranchVerdict::Mispredicted {
                        believed_taken: pred,
                        kind: Mispredict::Direction,
                    };
                }
                if pred {
                    // Correctly predicted taken: needs a target from BTB.
                    match btb_outcome {
                        BtbOutcome::Miss => {
                            self.stats.decode_redirects += 1;
                            self.decode_redirect = true;
                        }
                        BtbOutcome::L2Hit => self.btb_promote = true,
                        BtbOutcome::L1Hit => {}
                    }
                    BranchVerdict::PredictedTaken
                } else {
                    *nt_count += 1;
                    BranchVerdict::Continue
                }
            }
            InstClass::JumpDirect => {
                let (btb_outcome, _) = self.btb.lookup(pc);
                self.btb.update(pc, BranchKind::Direct, actual_target);
                match btb_outcome {
                    BtbOutcome::Miss => {
                        // Direct target is computed at decode: bubble only.
                        self.stats.decode_redirects += 1;
                        self.decode_redirect = true;
                    }
                    BtbOutcome::L2Hit => self.btb_promote = true,
                    BtbOutcome::L1Hit => {}
                }
                BranchVerdict::PredictedTaken
            }
            InstClass::Call => {
                let (btb_outcome, _) = self.btb.lookup(pc);
                self.btb.update(pc, BranchKind::Call, actual_target);
                self.ras.push(fallthrough);
                match btb_outcome {
                    BtbOutcome::Miss => {
                        self.stats.decode_redirects += 1;
                        self.decode_redirect = true;
                    }
                    BtbOutcome::L2Hit => self.btb_promote = true,
                    BtbOutcome::L1Hit => {}
                }
                BranchVerdict::PredictedTaken
            }
            InstClass::Ret => {
                let predicted = self.ras.pop();
                if predicted == Some(actual_target) {
                    BranchVerdict::PredictedTaken
                } else {
                    self.stats.target_mispredicts += 1;
                    self.btb.note_target_mispredict();
                    BranchVerdict::Mispredicted {
                        believed_taken: true,
                        kind: Mispredict::Target,
                    }
                }
            }
            InstClass::JumpIndirect => {
                let (btb_outcome, predicted) = self.btb.lookup(pc);
                self.btb.update(pc, BranchKind::Indirect, actual_target);
                match predicted {
                    Some(t) if t == actual_target => {
                        if btb_outcome == BtbOutcome::L2Hit {
                            self.btb_promote = true;
                        }
                        BranchVerdict::PredictedTaken
                    }
                    _ => {
                        self.stats.target_mispredicts += 1;
                        self.btb.note_target_mispredict();
                        BranchVerdict::Mispredicted {
                            believed_taken: true,
                            kind: Mispredict::Target,
                        }
                    }
                }
            }
            _ => unreachable!("process_branch called on non-branch {:?}", inst.class),
        }
    }
}

enum BranchVerdict {
    /// Correctly predicted not-taken: keep building the PW.
    Continue,
    /// Correctly predicted taken: PW ends here.
    PredictedTaken,
    /// Mispredicted: PW ends, pipeline charges resolution.
    Mispredicted {
        believed_taken: bool,
        kind: Mispredict,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucsim_model::BranchExec;

    fn alu(pc: u64, len: u8) -> DynInst {
        DynInst::simple(Addr::new(pc), len, InstClass::IntAlu)
    }

    fn jmp(pc: u64, target: u64) -> DynInst {
        DynInst::branch(
            Addr::new(pc),
            2,
            InstClass::JumpDirect,
            BranchExec {
                taken: true,
                target: Addr::new(target),
            },
        )
    }

    fn jcc(pc: u64, taken: bool, target: u64) -> DynInst {
        DynInst::branch(
            Addr::new(pc),
            2,
            InstClass::CondBranch,
            BranchExec {
                taken,
                target: Addr::new(target),
            },
        )
    }

    fn gen(insts: Vec<DynInst>) -> PwGenerator<std::vec::IntoIter<DynInst>> {
        PwGenerator::new(BpuConfig::default(), insts.into_iter())
    }

    #[test]
    fn straight_line_ends_at_icache_boundary() {
        // 16 4-byte insts from 0x1000 fill exactly one line.
        let mut insts: Vec<_> = (0..16).map(|i| alu(0x1000 + i * 4, 4)).collect();
        insts.extend((0..4).map(|i| alu(0x1040 + i * 4, 4)));
        let mut g = gen(insts);
        let b = g.advance().unwrap();
        assert_eq!(b.pw.termination, PwTermination::IcacheLineEnd);
        assert_eq!(b.pw.start, Addr::new(0x1000));
        assert_eq!(b.pw.end, Addr::new(0x1040));
        assert_eq!(b.insts.len(), 16);
        let b2 = g.advance().unwrap();
        assert_eq!(b2.pw.start, Addr::new(0x1040));
    }

    #[test]
    fn pw_starting_mid_line_ends_at_same_boundary() {
        // Figure 2(b): start mid-line, terminate at line end.
        let insts: Vec<_> = (0..8).map(|i| alu(0x1020 + i * 4, 4)).collect();
        let mut g = gen(insts);
        let b = g.advance().unwrap();
        assert_eq!(b.pw.start, Addr::new(0x1020));
        assert_eq!(b.pw.end, Addr::new(0x1040));
        assert_eq!(b.insts.len(), 8);
    }

    #[test]
    fn taken_branch_terminates_pw() {
        // Figure 2(c): predicted taken branch mid-line ends the PW. A
        // direct jump is statically taken, so no training needed.
        let insts = vec![alu(0x1000, 4), jmp(0x1004, 0x2000), alu(0x2000, 4)];
        let mut g = gen(insts);
        let b = g.advance().unwrap();
        assert_eq!(b.pw.termination, PwTermination::TakenBranch);
        assert!(b.pw.ends_in_taken_branch);
        assert_eq!(b.insts.len(), 2);
        // First sighting of the jump: BTB cold → decode redirect bubble.
        assert!(b.decode_redirect);
        let b2 = g.advance().unwrap();
        assert!(!b2.decode_redirect, "trained BTB on second window");
        assert_eq!(b2.pw.start, Addr::new(0x2000));
    }

    #[test]
    fn max_not_taken_branches_terminates_pw() {
        // Train TAGE so three NT branches are correctly predicted, then
        // check the NT budget (default 3) ends the window.
        let block = || {
            vec![
                jcc(0x1000, false, 0x3000),
                jcc(0x1002, false, 0x3000),
                jcc(0x1004, false, 0x3000),
                alu(0x1006, 4),
                jmp(0x100a, 0x1000),
            ]
        };
        let mut insts = Vec::new();
        for _ in 0..50 {
            insts.extend(block());
        }
        let mut g = gen(insts);
        // Skip warmup windows; inspect a late one starting at 0x1000.
        let mut found = false;
        for _ in 0..120 {
            match g.advance() {
                Some(b)
                    if b.pw.start == Addr::new(0x1000)
                        && b.pw.termination == PwTermination::MaxNotTakenBranches =>
                {
                    assert_eq!(b.insts.len(), 3, "ends right at the 3rd NT branch");
                    found = true;
                    break;
                }
                Some(_) => {}
                None => break,
            }
        }
        assert!(found, "never saw a MaxNotTakenBranches termination");
    }

    #[test]
    fn mispredicted_direction_flags_batch() {
        // A branch alternates T/NT with no warmup: first encounters
        // mispredict. Find at least one Direction mispredict.
        let insts = vec![alu(0x1000, 4), jcc(0x1004, true, 0x2000), alu(0x2000, 4)];
        let mut g = gen(insts);
        let b = g.advance().unwrap();
        // Cold TAGE predicts not-taken (bimodal weakly taken is >= 0 ...)
        // Either way the flags must be consistent:
        match b.mispredict {
            Some(Mispredict::Direction) => {
                assert_eq!(b.pw.termination, PwTermination::Redirect);
            }
            None => {
                assert_eq!(b.pw.termination, PwTermination::TakenBranch);
            }
            other => panic!("unexpected {other:?}"),
        }
        let s = g.stats();
        assert_eq!(s.cond_branches, 1);
    }

    #[test]
    fn return_predicted_by_ras() {
        let insts = vec![
            DynInst::branch(
                Addr::new(0x1000),
                5,
                InstClass::Call,
                BranchExec {
                    taken: true,
                    target: Addr::new(0x4000),
                },
            ),
            alu(0x4000, 4),
            DynInst::branch(
                Addr::new(0x4004),
                1,
                InstClass::Ret,
                BranchExec {
                    taken: true,
                    target: Addr::new(0x1005), // call fallthrough
                },
            ),
            alu(0x1005, 4),
        ];
        let mut g = gen(insts);
        let _call = g.advance().unwrap();
        let body = g.advance().unwrap();
        assert!(body.mispredict.is_none(), "RAS must predict the return");
        assert_eq!(body.pw.termination, PwTermination::TakenBranch);
        assert_eq!(g.stats().target_mispredicts, 0);
    }

    #[test]
    fn corrupted_ras_mispredicts_return() {
        // Return without a matching call.
        let insts = vec![
            DynInst::branch(
                Addr::new(0x4004),
                1,
                InstClass::Ret,
                BranchExec {
                    taken: true,
                    target: Addr::new(0x1005),
                },
            ),
            alu(0x1005, 4),
        ];
        let mut g = gen(insts);
        let b = g.advance().unwrap();
        assert_eq!(b.mispredict, Some(Mispredict::Target));
        assert_eq!(g.stats().target_mispredicts, 1);
    }

    #[test]
    fn indirect_jump_learns_target() {
        let hop = |_: u64| {
            vec![
                DynInst::branch(
                    Addr::new(0x1000),
                    3,
                    InstClass::JumpIndirect,
                    BranchExec {
                        taken: true,
                        target: Addr::new(0x5000),
                    },
                ),
                alu(0x5000, 4),
                jmp(0x5004, 0x1000),
            ]
        };
        let mut insts = Vec::new();
        for i in 0..4 {
            insts.extend(hop(i));
        }
        let mut g = gen(insts);
        let first = g.advance().unwrap();
        assert_eq!(first.mispredict, Some(Mispredict::Target), "cold BTB");
        // Walk the rest; the indirect target should now be predicted.
        let mut later_mispredicts = 0;
        while let Some(b) = g.advance() {
            if b.pw.start == Addr::new(0x1000) && b.mispredict.is_some() {
                later_mispredicts += 1;
            }
        }
        assert_eq!(later_mispredicts, 0, "stable indirect target must train");
    }

    #[test]
    fn mpki_accounting() {
        let s = BpuStats {
            insts: 2000,
            direction_mispredicts: 8,
            target_mispredicts: 2,
            ..Default::default()
        };
        assert!((s.mpki() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn slice_generator_matches_iterator_generator() {
        // A stressful mix: lines crossed, trained + cold branches, calls,
        // returns, indirect jumps, NT-budget loops.
        let mut insts = Vec::new();
        for round in 0..40u64 {
            insts.push(alu(0x1000, 4));
            insts.push(jcc(0x1004, round % 3 == 0, 0x2000));
            if round % 3 == 0 {
                insts.push(alu(0x2000, 4));
                insts.push(jmp(0x2004, 0x1008));
            } else {
                insts.push(alu(0x1006, 2));
            }
            insts.push(DynInst::branch(
                Addr::new(0x1008),
                5,
                InstClass::Call,
                BranchExec {
                    taken: true,
                    target: Addr::new(0x4000),
                },
            ));
            insts.push(alu(0x4000, 12));
            insts.push(DynInst::branch(
                Addr::new(0x400c),
                1,
                InstClass::Ret,
                BranchExec {
                    taken: true,
                    target: Addr::new(0x100d),
                },
            ));
            insts.push(jmp(0x100d, 0x1000));
        }

        let mut by_iter = gen(insts.clone());
        let mut by_slice = SlicePwGen::new(BpuConfig::default(), &insts);
        loop {
            match (by_iter.advance(), by_slice.advance()) {
                (None, None) => break,
                (Some(a), Some(span)) => {
                    assert_eq!(a.pw, span.pw);
                    assert_eq!(a.mispredict, span.mispredict);
                    assert_eq!(a.decode_redirect, span.decode_redirect);
                    assert_eq!(a.btb_promote, span.btb_promote);
                    assert_eq!(a.insts, &insts[span.start..span.end]);
                    let b = by_slice.batch_for(&span);
                    assert_eq!(a.insts, b.insts);
                }
                (a, b) => panic!("window count diverged: {a:?} vs {b:?}"),
            }
        }
        let (si, ss) = (by_iter.stats(), by_slice.stats());
        assert_eq!(si.insts, ss.insts);
        assert_eq!(si.pws, ss.pws);
        assert_eq!(si.direction_mispredicts, ss.direction_mispredicts);
        assert_eq!(si.target_mispredicts, ss.target_mispredicts);
        assert_eq!(si.decode_redirects, ss.decode_redirects);
    }

    #[test]
    fn inst_crossing_line_boundary_ends_pw() {
        // 8-byte inst at 0x103c spills into the next line → PW ends there.
        let insts = vec![alu(0x1038, 4), alu(0x103c, 8), alu(0x1044, 4)];
        let mut g = gen(insts);
        let b = g.advance().unwrap();
        assert_eq!(b.pw.termination, PwTermination::IcacheLineEnd);
        assert_eq!(b.insts.len(), 2);
        assert_eq!(b.pw.end, Addr::new(0x1044));
        let b2 = g.advance().unwrap();
        assert_eq!(b2.pw.start, Addr::new(0x1044));
    }
}

//! Return address stack.

use ucsim_model::Addr;

/// A fixed-depth return-address stack with wrap-around overwrite (the
/// standard hardware behaviour: deep recursion silently overwrites the
/// oldest entries, causing return mispredictions on the way back up).
///
/// # Example
///
/// ```
/// use ucsim_bpu::ReturnAddressStack;
/// use ucsim_model::Addr;
///
/// let mut ras = ReturnAddressStack::new(4);
/// ras.push(Addr::new(0x100));
/// assert_eq!(ras.pop(), Some(Addr::new(0x100)));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct ReturnAddressStack {
    buf: Vec<Addr>,
    top: usize,
    live: usize,
    capacity: usize,
}

impl ReturnAddressStack {
    /// Creates a stack with the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS needs capacity");
        ReturnAddressStack {
            buf: vec![Addr::new(0); capacity],
            top: 0,
            live: 0,
            capacity,
        }
    }

    /// Pushes a return address (call). Overwrites the oldest entry when
    /// full.
    pub fn push(&mut self, ret: Addr) {
        self.buf[self.top] = ret;
        self.top = (self.top + 1) % self.capacity;
        self.live = (self.live + 1).min(self.capacity);
    }

    /// Pops the predicted return address (ret). `None` when empty.
    pub fn pop(&mut self) -> Option<Addr> {
        if self.live == 0 {
            return None;
        }
        self.top = (self.top + self.capacity - 1) % self.capacity;
        self.live -= 1;
        Some(self.buf[self.top])
    }

    /// Current number of live entries.
    pub fn depth(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = ReturnAddressStack::new(8);
        ras.push(Addr::new(1));
        ras.push(Addr::new(2));
        assert_eq!(ras.pop(), Some(Addr::new(2)));
        assert_eq!(ras.pop(), Some(Addr::new(1)));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn overflow_loses_oldest() {
        let mut ras = ReturnAddressStack::new(2);
        ras.push(Addr::new(1));
        ras.push(Addr::new(2));
        ras.push(Addr::new(3)); // overwrites 1
        assert_eq!(ras.depth(), 2);
        assert_eq!(ras.pop(), Some(Addr::new(3)));
        assert_eq!(ras.pop(), Some(Addr::new(2)));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn rejects_zero_capacity() {
        let _ = ReturnAddressStack::new(0);
    }
}

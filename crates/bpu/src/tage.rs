//! TAGE conditional branch predictor (Seznec, "A new case for the TAGE
//! branch predictor", MICRO 2011 — reference [49] of the paper).
//!
//! A bimodal base table plus `N` partially-tagged tables indexed by
//! geometrically increasing global-history lengths. The longest-history
//! matching table provides the prediction; allocation on mispredictions
//! moves hard branches into longer-history tables.

use ucsim_model::{mix64, Addr, FromJson, SplitMix64, ToJson};

/// Geometry of the TAGE predictor.
#[derive(Debug, Clone, ToJson, FromJson)]
pub struct TageConfig {
    /// log2 entries of the bimodal base table.
    pub bimodal_bits: u32,
    /// log2 entries of each tagged table.
    pub table_bits: u32,
    /// Tag width in bits for tagged tables.
    pub tag_bits: u32,
    /// Global-history lengths per tagged table (geometric series).
    pub history_lengths: Vec<u32>,
}

impl Default for TageConfig {
    fn default() -> Self {
        TageConfig {
            bimodal_bits: 13,
            table_bits: 11,
            tag_bits: 9,
            history_lengths: vec![4, 9, 18, 36, 64],
        }
    }
}

/// Counters for predictor accuracy.
#[derive(Debug, Clone, Copy, Default)]
pub struct TageStats {
    /// Conditional-branch predictions made.
    pub predictions: u64,
    /// Direction mispredictions.
    pub mispredictions: u64,
    /// Predictions provided by a tagged table (vs bimodal).
    pub tagged_provided: u64,
}

impl TageStats {
    /// Misprediction rate in `[0,1]`.
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TaggedEntry {
    tag: u16,
    ctr: i8, // 3-bit signed counter: -4..=3, taken when >= 0
    useful: u8,
}

/// The predictor.
///
/// # Example
///
/// ```
/// use ucsim_bpu::Tage;
/// use ucsim_model::Addr;
///
/// let mut t = Tage::new(Default::default());
/// let pc = Addr::new(0x400);
/// // A strongly-biased branch trains quickly.
/// for _ in 0..64 {
///     let p = t.predict(pc);
///     t.update(pc, true, p);
/// }
/// assert!(t.predict(pc));
/// ```
#[derive(Debug, Clone)]
pub struct Tage {
    cfg: TageConfig,
    bimodal: Vec<i8>, // 2-bit: -2..=1, taken when >= 0
    tables: Vec<Vec<TaggedEntry>>,
    /// Global history as a shift register (bit 0 = most recent).
    ghr: u128,
    alloc_rng: SplitMix64,
    stats: TageStats,
    /// Provider of the most recent [`Self::predict`] call, consumed by the
    /// following [`Self::update`] for the same pc so the predict-then-update
    /// protocol costs one table scan instead of two. Nothing that affects a
    /// lookup (tables, ghr) mutates between the two calls, so the cached
    /// provider is exactly what a fresh scan would return.
    last_lookup: Option<(u64, Provider)>,
}

/// Which component provided a prediction (fed back into `update`).
#[derive(Debug, Clone, Copy)]
struct Provider {
    /// Table index (tables.len() == bimodal).
    table: usize,
    index: usize,
    /// Alternate prediction (used for the `useful` heuristic).
    alt_taken: bool,
}

impl Tage {
    /// Creates a predictor with all counters neutral.
    pub fn new(cfg: TageConfig) -> Self {
        assert!(
            !cfg.history_lengths.is_empty(),
            "need at least one tagged table"
        );
        assert!(
            cfg.history_lengths.windows(2).all(|w| w[0] < w[1]),
            "history lengths must increase"
        );
        assert!(
            *cfg.history_lengths.last().unwrap() <= 128,
            "history capped at 128 bits"
        );
        let tables = cfg
            .history_lengths
            .iter()
            .map(|_| vec![TaggedEntry::default(); 1 << cfg.table_bits])
            .collect();
        Tage {
            // Cold branches predict weakly not-taken (the conventional
            // static default; also what Figure 2(a)-style sequential PWs
            // assume for unseen branches).
            bimodal: vec![-1; 1 << cfg.bimodal_bits],
            tables,
            ghr: 0,
            alloc_rng: SplitMix64::new(0x7a6e_1dea),
            cfg,
            stats: TageStats::default(),
            last_lookup: None,
        }
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> TageStats {
        self.stats
    }

    /// Resets counters (not predictor state).
    pub fn reset_stats(&mut self) {
        self.stats = TageStats::default();
    }

    fn folded_history(&self, len: u32, out_bits: u32) -> u64 {
        let mask = if len >= 128 {
            u128::MAX
        } else {
            (1u128 << len) - 1
        };
        let mut h = self.ghr & mask;
        let mut folded: u64 = 0;
        while h != 0 {
            folded ^= (h as u64) & ((1u64 << out_bits) - 1);
            h >>= out_bits;
        }
        folded
    }

    fn index_of(&self, pc: Addr, t: usize) -> usize {
        let hl = self.cfg.history_lengths[t];
        let fh = self.folded_history(hl, self.cfg.table_bits);
        let mixed = mix64(pc.get() ^ (t as u64).wrapping_mul(0x9e3779b1) ^ fh << 1);
        (mixed as usize) & ((1 << self.cfg.table_bits) - 1)
    }

    fn tag_of(&self, pc: Addr, t: usize) -> u16 {
        let hl = self.cfg.history_lengths[t];
        let fh = self.folded_history(hl, self.cfg.tag_bits);
        let mixed = mix64(pc.get().rotate_left(7) ^ (t as u64) << 33 ^ fh);
        (mixed as u16) & ((1 << self.cfg.tag_bits) - 1)
    }

    fn bimodal_index(&self, pc: Addr) -> usize {
        (mix64(pc.get()) as usize) & ((1 << self.cfg.bimodal_bits) - 1)
    }

    fn lookup(&self, pc: Addr) -> (bool, Provider) {
        let mut provider: Option<(usize, usize)> = None;
        let mut alt: Option<bool> = None;
        // Scan longest → shortest.
        for t in (0..self.tables.len()).rev() {
            let idx = self.index_of(pc, t);
            let e = &self.tables[t][idx];
            if e.tag == self.tag_of(pc, t) {
                if provider.is_none() {
                    provider = Some((t, idx));
                } else if alt.is_none() {
                    alt = Some(e.ctr >= 0);
                    break;
                }
            }
        }
        let bim_taken = self.bimodal[self.bimodal_index(pc)] >= 0;
        match provider {
            Some((t, idx)) => {
                let taken = self.tables[t][idx].ctr >= 0;
                (
                    taken,
                    Provider {
                        table: t,
                        index: idx,
                        alt_taken: alt.unwrap_or(bim_taken),
                    },
                )
            }
            None => (
                bim_taken,
                Provider {
                    table: self.tables.len(),
                    index: self.bimodal_index(pc),
                    alt_taken: bim_taken,
                },
            ),
        }
    }

    /// Predicts the direction of the conditional branch at `pc`.
    pub fn predict(&mut self, pc: Addr) -> bool {
        self.stats.predictions += 1;
        let (taken, provider) = self.lookup(pc);
        if provider.table < self.tables.len() {
            self.stats.tagged_provided += 1;
        }
        self.last_lookup = Some((pc.get(), provider));
        taken
    }

    /// Trains on the actual outcome. `predicted` must be the value returned
    /// by the immediately preceding [`Self::predict`] call for this branch
    /// (the standard predict-then-update protocol).
    pub fn update(&mut self, pc: Addr, taken: bool, predicted: bool) {
        let provider = match self.last_lookup.take() {
            Some((cached_pc, p)) if cached_pc == pc.get() => p,
            _ => self.lookup(pc).1,
        };
        let mispredicted = predicted != taken;
        if mispredicted {
            self.stats.mispredictions += 1;
        }

        // Update the provider's counter.
        if provider.table < self.tables.len() {
            let e = &mut self.tables[provider.table][provider.index];
            e.ctr = if taken {
                (e.ctr + 1).min(3)
            } else {
                (e.ctr - 1).max(-4)
            };
            // Useful bit: provider differed from alt and was correct.
            let was_correct = !mispredicted;
            if provider.alt_taken != predicted {
                if was_correct {
                    e.useful = e.useful.saturating_add(1).min(3);
                } else {
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        } else {
            let b = &mut self.bimodal[provider.index];
            *b = if taken {
                (*b + 1).min(1)
            } else {
                (*b - 1).max(-2)
            };
        }

        // On a misprediction, allocate in a table with *longer* history
        // than the provider (bimodal provider ⇒ any tagged table).
        let start = if provider.table >= self.tables.len() {
            0
        } else {
            provider.table + 1
        };
        if mispredicted && start < self.tables.len() {
            // Prefer a candidate with useful == 0; decay a random one
            // otherwise.
            let pick = (start..self.tables.len()).find(|&t| {
                let idx = self.index_of(pc, t);
                self.tables[t][idx].useful == 0
            });
            match pick {
                Some(t) => {
                    let idx = self.index_of(pc, t);
                    let tag = self.tag_of(pc, t);
                    self.tables[t][idx] = TaggedEntry {
                        tag,
                        ctr: if taken { 0 } else { -1 },
                        useful: 0,
                    };
                }
                None => {
                    let t = start + self.alloc_rng.index(self.tables.len() - start);
                    let idx = self.index_of(pc, t);
                    self.tables[t][idx].useful = self.tables[t][idx].useful.saturating_sub(1);
                }
            }
        }

        // Shift the outcome into global history.
        self.ghr = (self.ghr << 1) | (taken as u128);
    }

    /// Convenience: predict + update in one call, returning the prediction.
    pub fn predict_and_update(&mut self, pc: Addr, taken: bool) -> bool {
        let p = self.predict(pc);
        self.update(pc, taken, p);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biased_branch_converges() {
        let mut t = Tage::new(TageConfig::default());
        let pc = Addr::new(0x1000);
        for _ in 0..100 {
            let p = t.predict(pc);
            t.update(pc, true, p);
        }
        t.reset_stats();
        for _ in 0..100 {
            let p = t.predict(pc);
            t.update(pc, true, p);
        }
        assert_eq!(t.stats().mispredictions, 0);
    }

    #[test]
    fn alternating_pattern_learned_via_history() {
        let mut t = Tage::new(TageConfig::default());
        let pc = Addr::new(0x2000);
        let mut taken = false;
        for _ in 0..4000 {
            taken = !taken;
            let p = t.predict(pc);
            t.update(pc, taken, p);
        }
        t.reset_stats();
        for _ in 0..1000 {
            taken = !taken;
            let p = t.predict(pc);
            t.update(pc, taken, p);
        }
        assert!(
            t.stats().mispredict_rate() < 0.05,
            "alternating branch should be near-perfect, rate={}",
            t.stats().mispredict_rate()
        );
    }

    #[test]
    fn loop_exit_pattern() {
        // taken x7 then not-taken, repeated: classic loop branch.
        let mut t = Tage::new(TageConfig::default());
        let pc = Addr::new(0x3000);
        for i in 0..16_000u64 {
            let taken = i % 8 != 7;
            let p = t.predict(pc);
            t.update(pc, taken, p);
        }
        t.reset_stats();
        for i in 0..8000u64 {
            let taken = i % 8 != 7;
            let p = t.predict(pc);
            t.update(pc, taken, p);
        }
        assert!(
            t.stats().mispredict_rate() < 0.08,
            "loop-exit rate={}",
            t.stats().mispredict_rate()
        );
    }

    #[test]
    fn random_branch_is_hard() {
        let mut t = Tage::new(TageConfig::default());
        let pc = Addr::new(0x4000);
        let mut rng = SplitMix64::new(99);
        for _ in 0..4000 {
            let taken = rng.chance(0.5);
            let p = t.predict(pc);
            t.update(pc, taken, p);
        }
        assert!(
            t.stats().mispredict_rate() > 0.3,
            "random branch cannot be predicted, rate={}",
            t.stats().mispredict_rate()
        );
    }

    #[test]
    fn distinct_branches_do_not_destructively_alias() {
        let mut t = Tage::new(TageConfig::default());
        // 64 branches, alternating bias by pc parity.
        for round in 0..200 {
            for b in 0..64u64 {
                let pc = Addr::new(0x8000 + b * 16);
                let taken = b % 2 == 0;
                let p = t.predict(pc);
                t.update(pc, taken, p);
                let _ = round;
            }
        }
        t.reset_stats();
        for b in 0..64u64 {
            let pc = Addr::new(0x8000 + b * 16);
            let taken = b % 2 == 0;
            let p = t.predict(pc);
            t.update(pc, taken, p);
        }
        assert!(
            t.stats().mispredict_rate() < 0.05,
            "rate={}",
            t.stats().mispredict_rate()
        );
    }

    #[test]
    #[should_panic(expected = "must increase")]
    fn rejects_unordered_histories() {
        let _ = Tage::new(TageConfig {
            history_lengths: vec![8, 8],
            ..Default::default()
        });
    }

    #[test]
    fn folded_history_changes_index() {
        let mut t = Tage::new(TageConfig::default());
        let pc = Addr::new(0x123450);
        let i0 = t.index_of(pc, 4);
        // Push 64 taken outcomes: history now all-ones.
        for _ in 0..64 {
            let p = t.predict(pc);
            t.update(pc, true, p);
        }
        let i1 = t.index_of(pc, 4);
        assert_ne!(i0, i1, "long-history index must depend on GHR");
    }
}

//! Front-end branch-prediction configuration.

use ucsim_model::{FromJson, ToJson};

use crate::TageConfig;

/// Configuration for the whole branch-prediction unit.
#[derive(Debug, Clone, ToJson, FromJson)]
pub struct BpuConfig {
    /// TAGE geometry.
    pub tage: TageConfig,
    /// Maximum predicted not-taken branches per PW (paper Section II-A:
    /// "a predefined number of predicted not-taken branches").
    pub max_not_taken_per_pw: u32,
    /// Return-address-stack depth.
    pub ras_depth: usize,
    /// L1 BTB set bits / ways.
    pub btb_l1_set_bits: u32,
    /// L1 BTB associativity.
    pub btb_l1_ways: usize,
    /// L2 BTB set bits.
    pub btb_l2_set_bits: u32,
    /// L2 BTB associativity.
    pub btb_l2_ways: usize,
}

impl Default for BpuConfig {
    fn default() -> Self {
        BpuConfig {
            tage: TageConfig::default(),
            max_not_taken_per_pw: 3,
            ras_depth: 32,
            btb_l1_set_bits: 9,
            btb_l1_ways: 4,
            btb_l2_set_bits: 12,
            btb_l2_ways: 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = BpuConfig::default();
        assert!(c.max_not_taken_per_pw >= 1);
        assert!(c.ras_depth >= 8);
        assert!(!c.tage.history_lengths.is_empty());
    }
}

//! A small, dependency-free JSON data model: the workspace's wire format.
//!
//! The repo builds in fully offline environments, so instead of `serde` +
//! `serde_json` the workspace carries its own JSON layer:
//!
//! * [`Json`] — a parsed JSON value. Integers keep full `i64`/`u64`
//!   precision (no silent `f64` truncation of large counters).
//! * [`ToJson`] / [`FromJson`] — the encode/decode traits every config and
//!   report type implements, usually via `#[derive(ToJson, FromJson)]`
//!   from the `ucsim-derive` crate (re-exported by this crate).
//! * a parser with depth/size discipline suitable for untrusted input
//!   (the `ucsim-serve` HTTP API feeds request bodies through it).
//!
//! # Canonical encodings
//!
//! Derived `ToJson` emits object members in field-declaration order and
//! formats floats with Rust's shortest-round-trip `Display`. Encoding is
//! therefore a *canonical function of the value*: equal values produce
//! byte-identical strings. The serve layer's content-addressed result
//! cache hashes these strings as cache keys.
//!
//! # Example
//!
//! ```
//! use ucsim_model::json::{FromJson, Json, ToJson};
//!
//! let v = Json::parse(r#"{"x": 1, "y": [1.5, -2.25]}"#).unwrap();
//! let x: u64 = ucsim_model::json::obj_field(&v, "x").unwrap();
//! let y: Vec<f64> = ucsim_model::json::obj_field(&v, "y").unwrap();
//! assert_eq!(x, 1);
//! assert_eq!(y, vec![1.5, -2.25]);
//! assert_eq!(y.to_json().to_string(), "[1.5,-2.25]");
//! ```

use std::fmt;

/// Maximum nesting depth the parser accepts (arrays/objects).
const MAX_DEPTH: u32 = 128;

/// A JSON value.
///
/// Numbers are split three ways so `u64`/`i64` survive round trips exactly
/// even beyond 2^53; parsing picks the narrowest representation that holds
/// the literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer literal.
    Int(i64),
    /// A non-negative integer literal.
    Uint(u64),
    /// A number with a fraction or exponent (or out of integer range).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; member order is preserved (canonical encodings depend
    /// on it).
    Obj(Vec<(String, Json)>),
}

/// A parse or decode error, with a byte position when produced by the
/// parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    msg: String,
    pos: Option<usize>,
}

impl JsonError {
    /// Creates a decode error with no source position.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError {
            msg: msg.into(),
            pos: None,
        }
    }

    fn at(msg: impl Into<String>, pos: usize) -> Self {
        JsonError {
            msg: msg.into(),
            pos: Some(pos),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(p) => write!(f, "{} (at byte {p})", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a JSON document (exactly one value plus whitespace).
    ///
    /// # Errors
    ///
    /// Returns an error on malformed input, nesting deeper than 128
    /// levels, or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            b: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.b.len() {
            return Err(JsonError::at("trailing characters after value", p.pos));
        }
        Ok(v)
    }

    /// Serializes with two-space indentation, for human-facing output.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Looks up an object member by name.
    pub fn get(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Uint(u) => Some(u),
            Json::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Float(f) => Some(f),
            Json::Uint(u) => Some(u as f64),
            Json::Int(i) => Some(i as f64),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value's members, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// A short name for the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) | Json::Uint(_) => "integer",
            Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Uint(u) => out.push_str(&u.to_string()),
            Json::Float(f) => write_f64(*f, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        fn pad(out: &mut String, n: usize) {
            for _ in 0..n {
                out.push_str("  ");
            }
        }
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, indent + 1);
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(members) if !members.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    pad(out, indent + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// `Display` (and therefore `to_string`) is the compact serialization —
/// no whitespace, member order preserved.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Writes an `f64` so that parsing the text recovers the exact bits.
/// Rust's `Display` is shortest-round-trip; non-finite values (which JSON
/// cannot express) encode as `null` and decode as NaN.
fn write_f64(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = f.to_string();
        out.push_str(&s);
        // "1" would re-parse as an integer; keep the float-ness explicit
        // so Json -> text -> Json is type-stable.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.pos) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(format!("expected `{}`", c as char), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(JsonError::at(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self, depth: u32) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::at("nesting too deep", self.pos));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(JsonError::at("expected `,` or `]`", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value(depth + 1)?;
                    members.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(JsonError::at("expected `,` or `}`", self.pos)),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(JsonError::at("expected a JSON value", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(&c) = self.b.get(self.pos) {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.b[start..self.pos])
                    .map_err(|_| JsonError::at("invalid utf-8 in string", start))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| JsonError::at("unterminated escape", self.pos))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00))
                                } else {
                                    return Err(JsonError::at("lone surrogate", self.pos));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| JsonError::at("invalid codepoint", self.pos))?,
                            );
                        }
                        _ => return Err(JsonError::at("unknown escape", self.pos - 1)),
                    }
                }
                Some(_) => return Err(JsonError::at("control character in string", self.pos)),
                None => return Err(JsonError::at("unterminated string", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let s = self
            .b
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| JsonError::at("truncated \\u escape", self.pos))?;
        let s = std::str::from_utf8(s).map_err(|_| JsonError::at("bad \\u escape", self.pos))?;
        let v =
            u32::from_str_radix(s, 16).map_err(|_| JsonError::at("bad \\u escape", self.pos))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).expect("number bytes are ascii");
        if !float {
            if let Some(stripped) = text.strip_prefix('-') {
                // `-0` parses to integer zero, which would drop the sign
                // bit; keep negative zero a float.
                if stripped.bytes().all(|b| b == b'0') {
                    return Ok(Json::Float(-0.0));
                }
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Json::Int(i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::Uint(u));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError::at("invalid number", start))
    }
}

/// Encoding to [`Json`]. Usually derived with `#[derive(ToJson)]`.
pub trait ToJson {
    /// Converts the value to its JSON representation.
    fn to_json(&self) -> Json;

    /// Canonical compact encoding (see the module docs).
    fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }
}

/// Decoding from [`Json`]. Usually derived with `#[derive(FromJson)]`.
pub trait FromJson: Sized {
    /// Reconstructs the value from JSON.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first mismatch.
    fn from_json(v: &Json) -> Result<Self, JsonError>;

    /// The value to use when an object member is absent (`None` means
    /// "absence is an error"). `Option<T>` decodes absence as `None`.
    fn from_absent() -> Option<Self> {
        None
    }

    /// Parses a JSON string and decodes it.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] from either the parser or the decoder.
    fn from_json_str(s: &str) -> Result<Self, JsonError> {
        Self::from_json(&Json::parse(s)?)
    }
}

/// Decodes member `name` of object `v`, applying [`FromJson::from_absent`]
/// when the member is missing. This is what derived `FromJson` impls call
/// per field.
///
/// # Errors
///
/// Returns a [`JsonError`] when `v` is not an object, the member is absent
/// with no default, or the member fails to decode.
pub fn obj_field<T: FromJson>(v: &Json, name: &str) -> Result<T, JsonError> {
    if !matches!(v, Json::Obj(_)) {
        return Err(JsonError::new(format!(
            "expected object with member `{name}`, found {}",
            v.type_name()
        )));
    }
    match v.get(name) {
        Some(member) => {
            T::from_json(member).map_err(|e| JsonError::new(format!("in member `{name}`: {e}")))
        }
        None => T::from_absent()
            .ok_or_else(|| JsonError::new(format!("missing object member `{name}`"))),
    }
}

/// Extracts a string value, with the expecting type's name in the error.
/// Derived enum `FromJson` impls call this.
///
/// # Errors
///
/// Returns a [`JsonError`] when `v` is not a string.
pub fn expect_str<'a>(v: &'a Json, what: &str) -> Result<&'a str, JsonError> {
    v.as_str().ok_or_else(|| {
        JsonError::new(format!(
            "expected {what} variant string, found {}",
            v.type_name()
        ))
    })
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool()
            .ok_or_else(|| JsonError::new(format!("expected bool, found {}", v.type_name())))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| JsonError::new(format!("expected string, found {}", v.type_name())))
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_owned())
    }
}

macro_rules! impl_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Uint(*self as u64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let u = v.as_u64().ok_or_else(|| {
                    JsonError::new(format!(
                        concat!("expected ", stringify!($t), ", found {}"),
                        v.type_name()
                    ))
                })?;
                <$t>::try_from(u).map_err(|_| {
                    JsonError::new(format!(concat!("value {} overflows ", stringify!($t)), u))
                })
            }
        }
    )*};
}

impl_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                let i = *self as i64;
                if i < 0 { Json::Int(i) } else { Json::Uint(i as u64) }
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let i = match *v {
                    Json::Int(i) => i,
                    Json::Uint(u) => i64::try_from(u).map_err(|_| {
                        JsonError::new(format!("value {} overflows i64", u))
                    })?,
                    ref other => {
                        return Err(JsonError::new(format!(
                            concat!("expected ", stringify!($t), ", found {}"),
                            other.type_name()
                        )))
                    }
                };
                <$t>::try_from(i).map_err(|_| {
                    JsonError::new(format!(concat!("value {} overflows ", stringify!($t)), i))
                })
            }
        }
    )*};
}

impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match *v {
            // Non-finite floats encode as null (JSON has no NaN).
            Json::Null => Ok(f64::NAN),
            _ => v
                .as_f64()
                .ok_or_else(|| JsonError::new(format!("expected number, found {}", v.type_name()))),
        }
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl FromJson for f32 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        f64::from_json(v).map(|f| f as f32)
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }

    fn from_absent() -> Option<Self> {
        Some(None)
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError::new(format!("expected array, found {}", v.type_name())))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson + fmt::Debug, const N: usize> FromJson for [T; N] {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        let items = Vec::<T>::from_json(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| JsonError::new(format!("expected array of {N} elements, found {n}")))
    }
}

macro_rules! impl_json_tuple {
    ($(($($t:ident : $i:tt),+) with $n:expr;)*) => {$(
        impl<$($t: ToJson),+> ToJson for ($($t,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$i.to_json()),+])
            }
        }
        impl<$($t: FromJson),+> FromJson for ($($t,)+) {
            fn from_json(v: &Json) -> Result<Self, JsonError> {
                let a = v.as_arr().ok_or_else(|| {
                    JsonError::new(format!("expected array, found {}", v.type_name()))
                })?;
                if a.len() != $n {
                    return Err(JsonError::new(format!(
                        "expected array of {} elements, found {}", $n, a.len()
                    )));
                }
                Ok(($($t::from_json(&a[$i])?,)+))
            }
        }
    )*};
}

impl_json_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Uint(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn u64_precision_survives() {
        let big = u64::MAX;
        let v = Json::parse(&big.to_string()).unwrap();
        assert_eq!(v, Json::Uint(big));
        assert_eq!(u64::from_json(&v).unwrap(), big);
    }

    #[test]
    fn negative_zero_keeps_its_sign() {
        let v = Json::parse("-0").unwrap();
        let f = f64::from_json(&v).unwrap();
        assert_eq!(f.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn float_text_roundtrip_is_bit_exact() {
        for f in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e308, -2.5e-17, 3.0] {
            let text = f.to_json().to_string();
            let back = f64::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{text}");
        }
    }

    #[test]
    fn whole_floats_stay_floats() {
        assert_eq!(3.0f64.to_json().to_string(), "3.0");
        assert_eq!(Json::parse("3.0").unwrap(), Json::Float(3.0));
    }

    #[test]
    fn nan_encodes_as_null() {
        assert_eq!(f64::NAN.to_json().to_string(), "null");
        assert!(f64::from_json(&Json::Null).unwrap().is_nan());
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "a\"b\\c\nd\te\u{1}é漢";
        let text = s.to_string().to_json().to_string();
        let back = String::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(Json::parse(r#""é😀""#).unwrap(), Json::Str("é😀".into()));
    }

    #[test]
    fn nested_structures_roundtrip() {
        let text = r#"{"a":[1,2,{"b":null}],"c":{"d":[true,false]},"e":-3.5}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn object_member_order_is_preserved() {
        let v = Json::parse(r#"{"z":1,"a":2}"#).unwrap();
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "tru",
            "\"abc",
            "1 2",
            "{\"a\" 1}",
            "{1:2}",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn option_handles_null_and_absence() {
        let v = Json::parse(r#"{"x":null}"#).unwrap();
        assert_eq!(obj_field::<Option<u64>>(&v, "x").unwrap(), None);
        assert_eq!(obj_field::<Option<u64>>(&v, "y").unwrap(), None);
        assert!(obj_field::<u64>(&v, "y").is_err());
    }

    #[test]
    fn arrays_tuples_and_fixed_arrays_decode() {
        let v = Json::parse("[1.5,2.5,3.5]").unwrap();
        assert_eq!(Vec::<f64>::from_json(&v).unwrap(), vec![1.5, 2.5, 3.5]);
        assert_eq!(<[f64; 3]>::from_json(&v).unwrap(), [1.5, 2.5, 3.5]);
        assert_eq!(<(f64, f64, f64)>::from_json(&v).unwrap(), (1.5, 2.5, 3.5));
        assert!(<[f64; 4]>::from_json(&v).is_err());
    }

    #[test]
    fn integer_overflow_is_detected() {
        let v = Json::parse("300").unwrap();
        assert!(u8::from_json(&v).is_err());
        assert_eq!(u16::from_json(&v).unwrap(), 300);
        let v = Json::parse("-1").unwrap();
        assert!(u64::from_json(&v).is_err());
        assert_eq!(i64::from_json(&v).unwrap(), -1);
    }

    #[test]
    fn pretty_printing_parses_back() {
        let v = Json::parse(r#"{"a":[1,2],"b":{"c":true},"d":[]}"#).unwrap();
        let pretty = v.to_pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn error_positions_are_reported() {
        let err = Json::parse("[1, oops]").unwrap_err();
        assert!(err.to_string().contains("at byte"), "{err}");
    }
}

//! Uop cache entry termination reasons (paper Section II-B2).

use std::fmt;

use crate::{FromJson, ToJson};

/// Why a uop cache entry stopped accumulating instructions.
///
/// The paper's baseline terminates an entry on: (a) the I-cache line
/// boundary, (b) a predicted-taken branch, (c) the per-entry uop limit,
/// (d) the per-entry immediate/displacement limit, (e) the per-entry
/// micro-coded-instruction limit. A sixth cause — the 64-byte physical
/// line filling up — arises from the byte accounting, and a seventh when a
/// front-end redirect flushes the accumulation buffer mid-build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, ToJson, FromJson)]
pub enum EntryTermination {
    /// Crossed the 64-byte I-cache line boundary (relaxed by CLASP).
    IcacheBoundary,
    /// Ended at a predicted-taken branch.
    TakenBranch,
    /// Reached the maximum number of uops per entry.
    MaxUops,
    /// Reached the maximum number of immediate/displacement fields.
    MaxImmDisp,
    /// Reached the maximum number of micro-coded instructions.
    MaxMicrocoded,
    /// The 56-bit-uop + 32-bit-imm byte budget of the line filled up.
    LineCapacity,
    /// Front-end redirect (misprediction) flushed the accumulation buffer.
    Flush,
    /// Prediction-window boundary (only under the `terminate_at_pw_end`
    /// build-rule ablation; the paper's baseline lets entries span
    /// sequential PWs).
    PwBoundary,
}

impl EntryTermination {
    /// All variants, for exhaustive statistics tables.
    pub const ALL: [EntryTermination; 8] = [
        EntryTermination::IcacheBoundary,
        EntryTermination::TakenBranch,
        EntryTermination::MaxUops,
        EntryTermination::MaxImmDisp,
        EntryTermination::MaxMicrocoded,
        EntryTermination::LineCapacity,
        EntryTermination::Flush,
        EntryTermination::PwBoundary,
    ];

    /// Stable index into [`Self::ALL`], for compact counters.
    pub const fn index(self) -> usize {
        match self {
            EntryTermination::IcacheBoundary => 0,
            EntryTermination::TakenBranch => 1,
            EntryTermination::MaxUops => 2,
            EntryTermination::MaxImmDisp => 3,
            EntryTermination::MaxMicrocoded => 4,
            EntryTermination::LineCapacity => 5,
            EntryTermination::Flush => 6,
            EntryTermination::PwBoundary => 7,
        }
    }
}

impl fmt::Display for EntryTermination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EntryTermination::IcacheBoundary => "icache-boundary",
            EntryTermination::TakenBranch => "taken-branch",
            EntryTermination::MaxUops => "max-uops",
            EntryTermination::MaxImmDisp => "max-imm-disp",
            EntryTermination::MaxMicrocoded => "max-microcoded",
            EntryTermination::LineCapacity => "line-capacity",
            EntryTermination::Flush => "flush",
            EntryTermination::PwBoundary => "pw-boundary",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_bijective() {
        for (i, t) in EntryTermination::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }

    #[test]
    fn display_is_kebab() {
        assert_eq!(
            EntryTermination::IcacheBoundary.to_string(),
            "icache-boundary"
        );
        assert_eq!(EntryTermination::MaxImmDisp.to_string(), "max-imm-disp");
    }
}

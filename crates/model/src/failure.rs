//! Stable failure vocabulary for job execution.
//!
//! Every way a simulation job can fail maps to one [`FailureKind`] with a
//! stable wire string — the `code` clients dispatch on, the record tag
//! the persistent store replays, and the label failure metrics count
//! under. Keeping the enum here (the bottom of the dependency graph) lets
//! the worker-pool supervisor, the pipeline, and the serving layer all
//! speak the same codes without depending on each other.

/// Why a job failed. The wire strings are a stable contract: they appear
/// in error envelopes, persisted `FAILED` store records, and metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// The simulation itself failed — a panic in the worker (payload
    /// captured in the message) or an unrunnable spec. Deterministic: the
    /// same spec fails the same way, so this outcome may be cached and
    /// persisted.
    SimulationFailed,
    /// The job exceeded its wall-clock deadline and was cancelled by the
    /// watchdog. Environment-dependent (load, scheduling), so never
    /// persisted — a retry may succeed.
    DeadlineExceeded,
    /// The server began draining before the job left the queue; it was
    /// failed rather than silently dropped. Transient by definition.
    ShuttingDown,
    /// The persistent store rejected an append (disk error). The
    /// in-memory result is unaffected; durability was lost.
    StoreIo,
    /// The job was cancelled by an explicit client request
    /// (`DELETE /v1/jobs/:id`, `DELETE /v1/matrix/:id`) before it could
    /// finish. Environmental: resubmitting the same spec may succeed, so
    /// never persisted or negatively cached.
    Cancelled,
}

impl FailureKind {
    /// Every kind, in wire order (stable for iteration in docs/tests).
    pub const ALL: [FailureKind; 5] = [
        FailureKind::SimulationFailed,
        FailureKind::DeadlineExceeded,
        FailureKind::ShuttingDown,
        FailureKind::StoreIo,
        FailureKind::Cancelled,
    ];

    /// The stable wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::SimulationFailed => "simulation_failed",
            FailureKind::DeadlineExceeded => "deadline_exceeded",
            FailureKind::ShuttingDown => "shutting_down",
            FailureKind::StoreIo => "store_io",
            FailureKind::Cancelled => "cancelled",
        }
    }

    /// Parses a wire string back to the kind.
    pub fn parse(s: &str) -> Option<FailureKind> {
        FailureKind::ALL.into_iter().find(|k| k.as_str() == s)
    }

    /// True when the same spec would deterministically fail again — the
    /// soundness condition for caching and persisting this failure.
    pub fn is_deterministic(self) -> bool {
        matches!(self, FailureKind::SimulationFailed)
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_strings_round_trip() {
        for k in FailureKind::ALL {
            assert_eq!(FailureKind::parse(k.as_str()), Some(k));
            assert_eq!(format!("{k}"), k.as_str());
        }
        assert_eq!(FailureKind::parse("nope"), None);
    }

    #[test]
    fn only_simulation_failures_are_deterministic() {
        assert!(FailureKind::SimulationFailed.is_deterministic());
        assert!(!FailureKind::DeadlineExceeded.is_deterministic());
        assert!(!FailureKind::ShuttingDown.is_deterministic());
        assert!(!FailureKind::StoreIo.is_deterministic());
        assert!(!FailureKind::Cancelled.is_deterministic());
    }
}

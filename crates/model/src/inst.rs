//! Dynamic x86-like instructions as they appear in a trace.
//!
//! The simulator is trace-driven: a workload is a deterministic stream of
//! [`DynInst`] records, one per retired x86 instruction, carrying exactly
//! the attributes the front-end model needs — byte length, uop count,
//! immediate/displacement count, micro-coded flag, branch behaviour and
//! (for memory ops) a data address.

use std::fmt;

use crate::{FromJson, ToJson};

use crate::Addr;

/// Architectural class of an x86-like instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, ToJson, FromJson)]
pub enum InstClass {
    /// Integer ALU (add/sub/logic/shift/lea/mov reg-reg).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch (direct target).
    CondBranch,
    /// Unconditional direct jump.
    JumpDirect,
    /// Indirect jump (register / memory target).
    JumpIndirect,
    /// Direct call.
    Call,
    /// Return.
    Ret,
    /// Floating point arithmetic.
    Fp,
    /// SIMD / vector (AVX-128/256/512).
    Simd,
    /// No-op / prefetch / fence.
    Nop,
}

impl InstClass {
    /// True for any control-transfer instruction.
    pub const fn is_branch(self) -> bool {
        matches!(
            self,
            InstClass::CondBranch
                | InstClass::JumpDirect
                | InstClass::JumpIndirect
                | InstClass::Call
                | InstClass::Ret
        )
    }

    /// True only for conditional branches.
    pub const fn is_cond_branch(self) -> bool {
        matches!(self, InstClass::CondBranch)
    }

    /// True for control transfers that are always taken when executed
    /// (everything except a conditional branch).
    pub const fn is_always_taken(self) -> bool {
        self.is_branch() && !self.is_cond_branch()
    }

    /// True for loads and stores.
    pub const fn is_mem(self) -> bool {
        matches!(self, InstClass::Load | InstClass::Store)
    }
}

impl fmt::Display for InstClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstClass::IntAlu => "alu",
            InstClass::IntMul => "mul",
            InstClass::IntDiv => "div",
            InstClass::Load => "load",
            InstClass::Store => "store",
            InstClass::CondBranch => "jcc",
            InstClass::JumpDirect => "jmp",
            InstClass::JumpIndirect => "jmp*",
            InstClass::Call => "call",
            InstClass::Ret => "ret",
            InstClass::Fp => "fp",
            InstClass::Simd => "simd",
            InstClass::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// Executed-branch information attached to branch instructions in a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, ToJson, FromJson)]
pub struct BranchExec {
    /// Actual (architecturally correct) direction.
    pub taken: bool,
    /// Actual target when taken (fall-through address otherwise).
    pub target: Addr,
}

/// One dynamic instruction of a trace.
///
/// `DynInst` is `Copy`-sized-small on purpose: trace generators produce
/// millions of these per run and the pipeline consumes them streaming.
///
/// # Example
///
/// ```
/// use ucsim_model::{Addr, BranchExec, DynInst, InstClass};
///
/// let br = DynInst::branch(Addr::new(0x100), 2, InstClass::CondBranch,
///                          BranchExec { taken: true, target: Addr::new(0x80) });
/// assert!(br.class.is_branch());
/// assert_eq!(br.next_pc(), Addr::new(0x80));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, ToJson, FromJson)]
pub struct DynInst {
    /// Instruction physical address.
    pub pc: Addr,
    /// Instruction byte length (1–15 for x86).
    pub len: u8,
    /// Number of uops this instruction decodes into (≥1).
    pub uops: u8,
    /// Number of 32-bit immediate/displacement fields carried (0–2).
    pub imm_disp: u8,
    /// True if decoded via the microcode sequencer.
    pub microcoded: bool,
    /// Architectural class.
    pub class: InstClass,
    /// Branch execution info (class.is_branch() ⇔ Some).
    pub branch: Option<BranchExec>,
    /// Data address for loads/stores.
    pub mem_addr: Option<Addr>,
}

impl DynInst {
    /// Creates a non-branch, non-memory instruction.
    pub const fn simple(pc: Addr, len: u8, class: InstClass) -> Self {
        DynInst {
            pc,
            len,
            uops: 1,
            imm_disp: 0,
            microcoded: false,
            class,
            branch: None,
            mem_addr: None,
        }
    }

    /// Creates a branch instruction with its executed outcome.
    pub const fn branch(pc: Addr, len: u8, class: InstClass, exec: BranchExec) -> Self {
        DynInst {
            pc,
            len,
            uops: 1,
            imm_disp: 0,
            microcoded: false,
            class,
            branch: Some(exec),
            mem_addr: None,
        }
    }

    /// Creates a memory instruction touching `mem_addr`.
    pub const fn mem(pc: Addr, len: u8, class: InstClass, mem_addr: Addr) -> Self {
        DynInst {
            pc,
            len,
            uops: 1,
            imm_disp: 0,
            microcoded: false,
            class,
            branch: None,
            mem_addr: Some(mem_addr),
        }
    }

    /// Builder-style: set uop count.
    pub const fn with_uops(mut self, uops: u8) -> Self {
        self.uops = uops;
        self
    }

    /// Builder-style: set immediate/displacement field count.
    pub const fn with_imm_disp(mut self, n: u8) -> Self {
        self.imm_disp = n;
        self
    }

    /// Builder-style: mark micro-coded.
    pub const fn with_microcoded(mut self, m: bool) -> Self {
        self.microcoded = m;
        self
    }

    /// Address of the byte just past this instruction (fall-through PC).
    pub const fn end(self) -> Addr {
        Addr::new(self.pc.get() + self.len as u64)
    }

    /// Architecturally correct next PC (branch target if taken, else
    /// fall-through).
    pub fn next_pc(self) -> Addr {
        match self.branch {
            Some(b) if b.taken => b.target,
            _ => self.end(),
        }
    }

    /// True if this instruction is an actually-taken branch.
    pub fn is_taken_branch(self) -> bool {
        matches!(self.branch, Some(b) if b.taken)
    }

    /// True if the instruction's bytes cross a 64-byte line boundary.
    pub fn crosses_line(self) -> bool {
        !self.pc.same_line(self.end().offset(u64::MAX)) // last byte = end-1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_predicates() {
        assert!(InstClass::CondBranch.is_branch());
        assert!(InstClass::Ret.is_branch());
        assert!(!InstClass::Load.is_branch());
        assert!(InstClass::CondBranch.is_cond_branch());
        assert!(!InstClass::JumpDirect.is_cond_branch());
        assert!(InstClass::Call.is_always_taken());
        assert!(!InstClass::CondBranch.is_always_taken());
        assert!(InstClass::Store.is_mem());
        assert!(!InstClass::Nop.is_mem());
    }

    #[test]
    fn fallthrough_next_pc() {
        let i = DynInst::simple(Addr::new(0x100), 3, InstClass::IntAlu);
        assert_eq!(i.next_pc(), Addr::new(0x103));
        assert!(!i.is_taken_branch());
    }

    #[test]
    fn taken_branch_next_pc() {
        let i = DynInst::branch(
            Addr::new(0x100),
            2,
            InstClass::CondBranch,
            BranchExec {
                taken: true,
                target: Addr::new(0x40),
            },
        );
        assert_eq!(i.next_pc(), Addr::new(0x40));
        assert!(i.is_taken_branch());
    }

    #[test]
    fn not_taken_branch_falls_through() {
        let i = DynInst::branch(
            Addr::new(0x100),
            2,
            InstClass::CondBranch,
            BranchExec {
                taken: false,
                target: Addr::new(0x40),
            },
        );
        assert_eq!(i.next_pc(), Addr::new(0x102));
        assert!(!i.is_taken_branch());
    }

    #[test]
    fn line_crossing() {
        // 4-byte inst starting at offset 62 spills into the next line.
        let i = DynInst::simple(Addr::new(0x103e), 4, InstClass::IntAlu);
        assert!(i.crosses_line());
        // 2-byte inst ending exactly at the boundary does not cross.
        let j = DynInst::simple(Addr::new(0x103e), 2, InstClass::IntAlu);
        assert!(!j.crosses_line());
    }

    #[test]
    fn builder_chain() {
        let i = DynInst::simple(Addr::new(0), 1, InstClass::Nop)
            .with_uops(5)
            .with_imm_disp(2)
            .with_microcoded(true);
        assert_eq!(i.uops, 5);
        assert_eq!(i.imm_disp, 2);
        assert!(i.microcoded);
    }
}

//! Physical addresses and I-cache line arithmetic.
//!
//! The paper's uop cache entry construction is defined in terms of 64-byte
//! I-cache line boundaries (Section II-B2), so line arithmetic shows up in
//! nearly every crate. [`Addr`] is a byte-granular physical address;
//! [`LineAddr`] is an address normalized to its 64-byte line.

use std::fmt;

use crate::{FromJson, ToJson};

/// Number of bytes in an I-cache line (and a uop cache physical line).
pub const ICACHE_LINE_BYTES: u64 = 64;

/// `log2(ICACHE_LINE_BYTES)`.
pub const ICACHE_LINE_SHIFT: u32 = 6;

/// A byte-granular physical address.
///
/// Newtype over `u64` so instruction addresses, data addresses and line
/// numbers cannot be confused (C-NEWTYPE).
///
/// # Example
///
/// ```
/// use ucsim_model::Addr;
/// let a = Addr::new(0x1000).offset(70);
/// assert_eq!(a.get(), 0x1046);
/// assert_eq!(a.line_offset(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, ToJson, FromJson)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the 64-byte I-cache line this byte falls in.
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> ICACHE_LINE_SHIFT)
    }

    /// Byte offset within the containing I-cache line (`0..64`).
    pub const fn line_offset(self) -> u64 {
        self.0 & (ICACHE_LINE_BYTES - 1)
    }

    /// The address advanced by `bytes`.
    pub const fn offset(self, bytes: u64) -> Self {
        Addr(self.0.wrapping_add(bytes))
    }

    /// Distance in bytes from `origin` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `origin > self`.
    pub fn distance_from(self, origin: Addr) -> u64 {
        debug_assert!(origin.0 <= self.0, "distance_from: origin after self");
        self.0.wrapping_sub(origin.0)
    }

    /// True if `self` and `other` fall in the same I-cache line.
    pub const fn same_line(self, other: Addr) -> bool {
        self.line().0 == other.line().0
    }

    /// First byte of the next I-cache line after this address.
    pub const fn next_line_start(self) -> Addr {
        Addr((self.0 | (ICACHE_LINE_BYTES - 1)) + 1)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// A 64-byte-line-granular address (an I-cache line number).
///
/// # Example
///
/// ```
/// use ucsim_model::{Addr, LineAddr};
/// let l: LineAddr = Addr::new(0x1046).line();
/// assert_eq!(l.base(), Addr::new(0x1040));
/// assert_eq!(l.next().base(), Addr::new(0x1080));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, ToJson, FromJson)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number (byte address >> 6).
    pub const fn from_line_number(n: u64) -> Self {
        LineAddr(n)
    }

    /// The raw line number.
    pub const fn number(self) -> u64 {
        self.0
    }

    /// First byte address of the line.
    pub const fn base(self) -> Addr {
        Addr(self.0 << ICACHE_LINE_SHIFT)
    }

    /// One past the last byte address of the line.
    pub const fn end(self) -> Addr {
        Addr((self.0 + 1) << ICACHE_LINE_SHIFT)
    }

    /// The immediately following line.
    pub const fn next(self) -> LineAddr {
        LineAddr(self.0 + 1)
    }

    /// The immediately preceding line, saturating at line zero.
    pub const fn prev(self) -> LineAddr {
        LineAddr(self.0.saturating_sub(1))
    }

    /// True if byte address `a` falls inside this line.
    pub const fn contains(self, a: Addr) -> bool {
        a.line().0 == self.0
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl From<Addr> for LineAddr {
    fn from(a: Addr) -> Self {
        a.line()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_offset_and_base() {
        let a = Addr::new(0x40_0123);
        assert_eq!(a.line_offset(), 0x23);
        assert_eq!(a.line().base(), Addr::new(0x40_0100));
        assert_eq!(a.line().end(), Addr::new(0x40_0140));
    }

    #[test]
    fn same_line_detection() {
        let a = Addr::new(0x1000);
        assert!(a.same_line(Addr::new(0x103f)));
        assert!(!a.same_line(Addr::new(0x1040)));
    }

    #[test]
    fn next_line_start_at_boundary() {
        // An address exactly on a boundary advances to the *next* line.
        assert_eq!(Addr::new(0x1040).next_line_start(), Addr::new(0x1080));
        assert_eq!(Addr::new(0x1041).next_line_start(), Addr::new(0x1080));
        assert_eq!(Addr::new(0x107f).next_line_start(), Addr::new(0x1080));
    }

    #[test]
    fn line_neighbours() {
        let l = Addr::new(0x2000).line();
        assert_eq!(l.next().prev(), l);
        assert_eq!(LineAddr::from_line_number(0).prev().number(), 0);
    }

    #[test]
    fn distance() {
        assert_eq!(Addr::new(0x105).distance_from(Addr::new(0x100)), 5);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr::new(0xdead).to_string(), "0xdead");
        assert_eq!(Addr::new(0x40).line().to_string(), "L0x1");
    }

    #[test]
    fn contains_line() {
        let l = Addr::new(0x1040).line();
        assert!(l.contains(Addr::new(0x1040)));
        assert!(l.contains(Addr::new(0x107f)));
        assert!(!l.contains(Addr::new(0x1080)));
        assert!(!l.contains(Addr::new(0x103f)));
    }
}

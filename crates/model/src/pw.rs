//! Prediction windows — the fetch unit of a decoupled front end.
//!
//! The branch predictor runs ahead of fetch and emits *prediction windows*
//! (PWs): ranges of consecutive x86 instructions predicted to execute
//! (paper Section II-A). A PW starts anywhere in an I-cache line and
//! terminates at (a) the end of the I-cache line, (b) a predicted-taken
//! branch, or (c) a maximum number of predicted not-taken branches.

use std::fmt;

use crate::{FromJson, ToJson};

use crate::Addr;

/// Identifier for a prediction window, unique within a run.
///
/// PWAC / F-PWAC compaction (paper Section V-B2/V-B3) tags every uop cache
/// entry with the PW that created it; this is that tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, ToJson, FromJson)]
pub struct PwId(pub u64);

impl fmt::Display for PwId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PW#{}", self.0)
    }
}

/// Why a prediction window was terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, ToJson, FromJson)]
pub enum PwTermination {
    /// Reached the end of the 64-byte I-cache line.
    IcacheLineEnd,
    /// Ended at a predicted-taken branch.
    TakenBranch,
    /// Hit the maximum number of predicted not-taken branches.
    MaxNotTakenBranches,
    /// Front-end redirect (misprediction recovery / trace end).
    Redirect,
}

impl fmt::Display for PwTermination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PwTermination::IcacheLineEnd => "icache-line-end",
            PwTermination::TakenBranch => "taken-branch",
            PwTermination::MaxNotTakenBranches => "max-not-taken",
            PwTermination::Redirect => "redirect",
        };
        f.write_str(s)
    }
}

/// A prediction window: `[start, end)` over instruction bytes, plus the
/// dynamic-instruction span it covers in the trace.
///
/// # Example
///
/// ```
/// use ucsim_model::{Addr, PredictionWindow, PwId, PwTermination};
/// let pw = PredictionWindow {
///     id: PwId(3),
///     start: Addr::new(0x1010),
///     end: Addr::new(0x1040),
///     first_seq: 100,
///     inst_count: 9,
///     termination: PwTermination::IcacheLineEnd,
///     ends_in_taken_branch: false,
/// };
/// assert_eq!(pw.byte_len(), 0x30);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, ToJson, FromJson)]
pub struct PredictionWindow {
    /// Unique id (monotonic per run).
    pub id: PwId,
    /// Address of the first instruction byte in the window.
    pub start: Addr,
    /// One past the last instruction byte in the window.
    pub end: Addr,
    /// Dynamic sequence number of the first instruction in the window.
    pub first_seq: u64,
    /// Number of dynamic instructions covered.
    pub inst_count: u32,
    /// Why the window ended.
    pub termination: PwTermination,
    /// True if the final instruction is a predicted-taken branch.
    pub ends_in_taken_branch: bool,
}

impl PredictionWindow {
    /// Window length in instruction bytes.
    pub fn byte_len(&self) -> u64 {
        self.end.distance_from(self.start)
    }

    /// Dynamic sequence number one past the last instruction in the window.
    pub fn end_seq(&self) -> u64 {
        self.first_seq + self.inst_count as u64
    }

    /// True if the window stays within a single I-cache line.
    ///
    /// By construction PWs never span lines (they terminate at the line
    /// boundary); this is asserted by the PW generator's tests.
    pub fn within_one_line(&self) -> bool {
        self.byte_len() == 0 || self.start.same_line(self.end.offset(u64::MAX))
    }
}

impl fmt::Display for PredictionWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}..{}) {} insts, {}",
            self.id, self.start, self.end, self.inst_count, self.termination
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pw(start: u64, end: u64) -> PredictionWindow {
        PredictionWindow {
            id: PwId(0),
            start: Addr::new(start),
            end: Addr::new(end),
            first_seq: 0,
            inst_count: 4,
            termination: PwTermination::IcacheLineEnd,
            ends_in_taken_branch: false,
        }
    }

    #[test]
    fn byte_len() {
        assert_eq!(pw(0x1010, 0x1040).byte_len(), 0x30);
    }

    #[test]
    fn within_one_line() {
        assert!(pw(0x1010, 0x1040).within_one_line());
        assert!(pw(0x1000, 0x1040).within_one_line());
        assert!(!pw(0x1010, 0x1041).within_one_line());
    }

    #[test]
    fn end_seq() {
        let mut p = pw(0, 8);
        p.first_seq = 10;
        p.inst_count = 3;
        assert_eq!(p.end_seq(), 13);
    }

    #[test]
    fn display_formats() {
        let p = pw(0x10, 0x20);
        let s = p.to_string();
        assert!(s.contains("PW#0"));
        assert!(s.contains("icache-line-end"));
    }
}

//! Fixed-length micro-operations.
//!
//! The paper assumes each uop occupies 56 bits (Table I) and each
//! immediate/displacement operand 32 bits. An x86 instruction decodes into
//! one or more uops; micro-coded instructions expand into longer sequences
//! fed by the microcode sequencer.

use std::fmt;

use crate::{FromJson, ToJson};

use crate::Addr;

/// Storage footprint of one uop in the uop cache: 56 bits = 7 bytes.
pub const UOP_BYTES: u32 = 7;

/// Storage footprint of one immediate/displacement field: 32 bits = 4 bytes.
pub const IMM_DISP_BYTES: u32 = 4;

/// Functional class of a micro-operation, used by the back-end timing model
/// to pick execution latency and by statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, ToJson, FromJson)]
pub enum UopKind {
    /// Single-cycle integer ALU operation (add, sub, logic, shifts, lea).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide (long latency, unpipelined).
    IntDiv,
    /// Memory load.
    Load,
    /// Memory store (address + data considered a single uop here).
    Store,
    /// Conditional or unconditional branch / call / return.
    Branch,
    /// Floating-point add/sub/convert.
    FpAdd,
    /// Floating-point multiply / FMA.
    FpMul,
    /// Floating-point divide / sqrt.
    FpDiv,
    /// SIMD integer / vector op (AVX-128/256/512 lanes).
    Simd,
    /// No-op (padding, fences modeled as nops).
    Nop,
}

impl UopKind {
    /// Back-end execution latency in cycles for this class.
    ///
    /// These are typical modern-x86 latencies; the figures of merit in the
    /// reproduction are all relative, so only rough realism matters.
    pub const fn latency(self) -> u32 {
        match self {
            UopKind::IntAlu | UopKind::Nop => 1,
            UopKind::IntMul => 3,
            UopKind::IntDiv => 18,
            UopKind::Load => 4,
            UopKind::Store => 1,
            UopKind::Branch => 1,
            UopKind::FpAdd => 3,
            UopKind::FpMul => 4,
            UopKind::FpDiv => 13,
            UopKind::Simd => 2,
        }
    }

    /// True for memory-reading uops.
    pub const fn is_load(self) -> bool {
        matches!(self, UopKind::Load)
    }

    /// True for branch uops.
    pub const fn is_branch(self) -> bool {
        matches!(self, UopKind::Branch)
    }
}

impl fmt::Display for UopKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UopKind::IntAlu => "alu",
            UopKind::IntMul => "mul",
            UopKind::IntDiv => "div",
            UopKind::Load => "load",
            UopKind::Store => "store",
            UopKind::Branch => "branch",
            UopKind::FpAdd => "fadd",
            UopKind::FpMul => "fmul",
            UopKind::FpDiv => "fdiv",
            UopKind::Simd => "simd",
            UopKind::Nop => "nop",
        };
        f.write_str(s)
    }
}

/// A single decoded micro-operation.
///
/// Uops are produced by the x86 decoder (or read from the uop cache / loop
/// cache) and dispatched to the back-end. The simulator does not model
/// register dataflow bit-for-bit; a uop carries enough identity (`pc`,
/// `seq`, `kind`) for timing, replay determinism and statistics.
///
/// # Example
///
/// ```
/// use ucsim_model::{Addr, Uop, UopKind};
/// let u = Uop::new(Addr::new(0x1000), 7, UopKind::Load);
/// assert!(u.kind.is_load());
/// assert_eq!(u.pc, Addr::new(0x1000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, ToJson, FromJson)]
pub struct Uop {
    /// Address of the parent x86 instruction.
    pub pc: Addr,
    /// Global dynamic sequence number of the parent instruction.
    pub seq: u64,
    /// Functional class.
    pub kind: UopKind,
    /// Index of this uop within its parent instruction (0-based).
    pub slot: u8,
    /// True if the parent instruction is micro-coded (MS-ROM sequence).
    pub microcoded: bool,
    /// True if this uop carries an immediate/displacement field that must be
    /// stored alongside it in a uop cache entry.
    pub has_imm_disp: bool,
}

impl Uop {
    /// Creates a uop for instruction `pc`, dynamic sequence number `seq`.
    pub const fn new(pc: Addr, seq: u64, kind: UopKind) -> Self {
        Uop {
            pc,
            seq,
            kind,
            slot: 0,
            microcoded: false,
            has_imm_disp: false,
        }
    }

    /// Builder-style: mark which uop slot of the parent instruction this is.
    pub const fn with_slot(mut self, slot: u8) -> Self {
        self.slot = slot;
        self
    }

    /// Builder-style: mark the parent as micro-coded.
    pub const fn with_microcoded(mut self, m: bool) -> Self {
        self.microcoded = m;
        self
    }

    /// Builder-style: attach an immediate/displacement field.
    pub const fn with_imm_disp(mut self, i: bool) -> Self {
        self.has_imm_disp = i;
        self
    }

    /// Stable 64-bit hash of this uop's identity, used for deterministic
    /// back-end dependency modeling that does not drift across
    /// configurations (A/B comparisons stay aligned).
    pub fn identity_hash(&self) -> u64 {
        crate::mix64(self.pc.get() ^ self.seq.rotate_left(17) ^ (self.slot as u64) << 56)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_match_paper() {
        assert_eq!(UOP_BYTES, 7); // 56 bits
        assert_eq!(IMM_DISP_BYTES, 4); // 32 bits
    }

    #[test]
    fn latencies_are_positive_and_ordered() {
        assert!(UopKind::IntDiv.latency() > UopKind::IntMul.latency());
        assert!(UopKind::IntMul.latency() > UopKind::IntAlu.latency());
        assert!(UopKind::FpDiv.latency() > UopKind::FpMul.latency());
        for k in [
            UopKind::IntAlu,
            UopKind::IntMul,
            UopKind::IntDiv,
            UopKind::Load,
            UopKind::Store,
            UopKind::Branch,
            UopKind::FpAdd,
            UopKind::FpMul,
            UopKind::FpDiv,
            UopKind::Simd,
            UopKind::Nop,
        ] {
            assert!(k.latency() >= 1, "{k} must take at least a cycle");
        }
    }

    #[test]
    fn builder_chain() {
        let u = Uop::new(Addr::new(4), 9, UopKind::Store)
            .with_slot(2)
            .with_microcoded(true)
            .with_imm_disp(true);
        assert_eq!(u.slot, 2);
        assert!(u.microcoded);
        assert!(u.has_imm_disp);
    }

    #[test]
    fn identity_hash_distinguishes_slots() {
        let a = Uop::new(Addr::new(4), 9, UopKind::IntAlu).with_slot(0);
        let b = Uop::new(Addr::new(4), 9, UopKind::IntAlu).with_slot(1);
        assert_ne!(a.identity_hash(), b.identity_hash());
    }

    #[test]
    fn identity_hash_is_stable() {
        let a = Uop::new(Addr::new(0x1234), 77, UopKind::Load);
        assert_eq!(a.identity_hash(), a.identity_hash());
    }
}

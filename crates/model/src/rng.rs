//! Deterministic randomness utilities.
//!
//! The whole simulator is reproducible from a single seed. Workload
//! synthesis uses [`SplitMix64`]; per-uop decisions in the back-end use the
//! stateless [`mix64`] hash so that identical traces produce identical
//! back-end behaviour regardless of front-end configuration (A/B
//! comparisons between uop cache designs are then not confounded by RNG
//! stream drift).

/// Finalizing 64-bit mix function (SplitMix64 / Murmur3 finalizer family).
///
/// Stateless, bijective, avalanching. Used to derive per-item pseudo-random
/// decisions from stable identities.
///
/// # Example
///
/// ```
/// use ucsim_model::mix64;
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(42), mix64(42));
/// ```
pub const fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// SplitMix64 pseudo-random number generator.
///
/// Small, fast, with a full 2^64 period — more than adequate for workload
/// synthesis, and trivially reproducible. Not cryptographic.
///
/// # Example
///
/// ```
/// use ucsim_model::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift; bias is negligible for simulator purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Geometric-ish positive sample with the given mean (rounded, min 1).
    ///
    /// Used by workload generators for basic-block lengths and loop trip
    /// counts. Mean values below 1 return 1.
    pub fn geometric_mean(&mut self, mean: f64) -> u64 {
        if mean <= 1.0 {
            return 1;
        }
        // Inverse-CDF sampling of a geometric distribution with success
        // probability 1/mean, shifted to start at 1.
        let p = 1.0 / mean;
        let u = self.unit_f64().max(f64::MIN_POSITIVE);
        let val = (u.ln() / (1.0 - p).ln()).floor() as u64 + 1;
        val.min(100_000)
    }

    /// Derives an independent child generator (e.g. one per workload
    /// subsystem) from this generator's stream.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(mix64(self.next_u64()))
    }

    /// Zipf-distributed index in `[0, n)` with exponent `s` using the
    /// rejection-inversion method of Hörmann & Derflinger.
    ///
    /// Hot-code selection in the workload generator uses this to model the
    /// strong code-reuse skew real applications show.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "zipf over empty domain");
        if n == 1 {
            return 0;
        }
        // Simple inverse-power transform: adequate statistical quality for
        // workload skew, cheap, and deterministic.
        let u = self.unit_f64().max(1e-12);
        if (s - 1.0).abs() < 1e-9 {
            let hn = (n as f64).ln();
            let x = (u * hn).exp_m1() / ((hn).exp_m1() / (n as f64 - 1.0).max(1.0));
            (x as usize).min(n - 1)
        } else {
            let exp = 1.0 - s;
            let nf = n as f64;
            let x = ((u * (nf.powf(exp) - 1.0)) + 1.0).powf(1.0 / exp);
            (x as usize).min(n - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn unit_in_range() {
        let mut r = SplitMix64::new(5);
        for _ in 0..1000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.1));
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut r = SplitMix64::new(77);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.geometric_mean(6.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 6.0).abs() < 0.5, "mean was {mean}");
    }

    #[test]
    fn geometric_min_one() {
        let mut r = SplitMix64::new(77);
        for _ in 0..100 {
            assert!(r.geometric_mean(0.2) == 1);
            assert!(r.geometric_mean(3.0) >= 1);
        }
    }

    #[test]
    fn zipf_skews_to_low_indices() {
        let mut r = SplitMix64::new(3);
        let n = 1000usize;
        let mut lows = 0;
        let trials = 10_000;
        for _ in 0..trials {
            let z = r.zipf(n, 1.2);
            assert!(z < n);
            if z < n / 10 {
                lows += 1;
            }
        }
        // With s=1.2 the first decile should dominate heavily.
        assert!(lows > trials / 2, "lows={lows}");
    }

    #[test]
    fn zipf_single_element() {
        let mut r = SplitMix64::new(3);
        assert_eq!(r.zipf(1, 1.1), 0);
    }

    #[test]
    fn fork_diverges_from_parent() {
        let mut a = SplitMix64::new(123);
        let mut child = a.fork();
        assert_ne!(a.next_u64(), child.next_u64());
    }

    #[test]
    fn mix64_is_bijective_sample() {
        // Spot-check injectivity over a small domain.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }
}

//! Cooperative cancellation.
//!
//! A [`CancelToken`] is a cloneable flag shared between the code doing
//! long-running work (the simulation loop, which polls it) and the code
//! that may need to stop that work (a deadline watchdog, a draining
//! server). Cancellation is *cooperative*: setting the flag terminates
//! nothing by itself — the worker must check it at loop boundaries and
//! unwind cleanly. That is the only kind of cancellation that composes
//! with a deterministic simulator: there is no safe point to preempt a
//! thread mid-update, but every prediction-window boundary is a safe
//! point to stop at.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable cancellation flag. All clones observe the same state.
///
/// # Example
///
/// ```
/// use ucsim_model::CancelToken;
///
/// let token = CancelToken::new();
/// let watcher = token.clone();
/// assert!(!watcher.is_cancelled());
/// token.cancel();
/// assert!(watcher.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once any clone has called [`cancel`](Self::cancel).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled() && !c.is_cancelled());
        c.cancel();
        assert!(t.is_cancelled() && c.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn separate_tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }

    #[test]
    fn observable_across_threads() {
        let t = CancelToken::new();
        let c = t.clone();
        let h = std::thread::spawn(move || {
            while !c.is_cancelled() {
                std::thread::yield_now();
            }
            true
        });
        t.cancel();
        assert!(h.join().unwrap());
    }
}

//! Small statistics containers used by every stats module.

use std::fmt;

/// A fixed-bucket histogram over `u64` samples.
///
/// Buckets are defined by their (inclusive) upper bounds; samples above the
/// last bound land in an implicit overflow bucket.
///
/// # Example
///
/// ```
/// use ucsim_model::Histogram;
/// let mut h = Histogram::new(&[19, 39, 64]);
/// h.record(5);
/// h.record(25);
/// h.record(64);
/// h.record(1000); // overflow
/// assert_eq!(h.counts(), &[1, 1, 1, 1]);
/// assert_eq!(h.total(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    total: u64,
    sum: u128,
}

impl Histogram {
    /// Creates a histogram with the given strictly-increasing inclusive
    /// upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += v as u128;
    }

    /// Per-bucket counts (last element is the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The configured inclusive upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Total number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of all recorded sample values (a Prometheus histogram's
    /// `_sum` series).
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of all recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Per-bucket fractions of the total (all zeros when empty).
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Approximate inverse CDF: the smallest bucket upper bound at which
    /// the cumulative fraction reaches `q` (`0.0..=1.0`). Returns `None`
    /// when empty; the overflow bucket reports the last bound.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
        if self.total == 0 {
            return None;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Some(
                    *self
                        .bounds
                        .get(i)
                        .unwrap_or(self.bounds.last().expect("non-empty")),
                );
            }
        }
        self.bounds.last().copied()
    }

    /// Merges another histogram with identical bounds into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "merging incompatible histograms");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut lo = 0u64;
        for (i, &b) in self.bounds.iter().enumerate() {
            write!(f, "[{lo}-{b}]={} ", self.counts[i])?;
            lo = b + 1;
        }
        write!(
            f,
            "[>{}]={}",
            self.bounds.last().unwrap(),
            self.counts.last().unwrap()
        )
    }
}

/// Streaming mean/min/max accumulator.
///
/// # Example
///
/// ```
/// use ucsim_model::RunningStat;
/// let mut s = RunningStat::new();
/// s.push(2.0);
/// s.push(4.0);
/// assert_eq!(s.mean(), 3.0);
/// assert_eq!(s.count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningStat {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl RunningStat {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStat {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_assignment_inclusive() {
        let mut h = Histogram::new(&[10, 20]);
        h.record(10); // first bucket (inclusive)
        h.record(11); // second
        h.record(20); // second
        h.record(21); // overflow
        assert_eq!(h.counts(), &[1, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_bad_bounds() {
        let _ = Histogram::new(&[5, 5]);
    }

    #[test]
    #[should_panic(expected = "at least one bound")]
    fn rejects_empty_bounds() {
        let _ = Histogram::new(&[]);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = Histogram::new(&[1, 2, 3]);
        for v in 0..100 {
            h.record(v % 5);
        }
        let s: f64 = h.fractions().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_fractions_are_zero() {
        let h = Histogram::new(&[1]);
        assert_eq!(h.fractions(), vec![0.0, 0.0]);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new(&[10]);
        let mut b = Histogram::new(&[10]);
        a.record(5);
        b.record(15);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 1]);
        assert_eq!(a.total(), 2);
        assert_eq!(a.sum(), 20);
        assert_eq!(a.mean(), 10.0);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[10]);
        let b = Histogram::new(&[11]);
        a.merge(&b);
    }

    #[test]
    fn quantile_bounds() {
        let mut h = Histogram::new(&[10, 20, 30]);
        for v in [1, 2, 3, 15, 25, 25, 25, 40] {
            h.record(v);
        }
        assert_eq!(h.quantile_bound(0.0), Some(10));
        assert_eq!(h.quantile_bound(0.5), Some(20));
        assert_eq!(h.quantile_bound(0.8), Some(30));
        assert_eq!(h.quantile_bound(1.0), Some(30)); // overflow reports last
        assert_eq!(Histogram::new(&[1]).quantile_bound(0.5), None);
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn quantile_rejects_bad_q() {
        let mut h = Histogram::new(&[1]);
        h.record(0);
        let _ = h.quantile_bound(1.5);
    }

    #[test]
    fn running_stat_minmax() {
        let mut s = RunningStat::new();
        assert!(s.min().is_none());
        s.push(3.0);
        s.push(-1.0);
        s.push(7.0);
        assert_eq!(s.min(), Some(-1.0));
        assert_eq!(s.max(), Some(7.0));
        assert_eq!(s.count(), 3);
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_display() {
        let mut h = Histogram::new(&[19, 39, 64]);
        h.record(70);
        let s = h.to_string();
        assert!(s.contains("[>64]=1"), "{s}");
    }
}

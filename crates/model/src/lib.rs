//! # ucsim-model
//!
//! Shared vocabulary types for the `ucsim` x86 front-end simulator, a
//! from-scratch reproduction of *"Improving the Utilization of
//! Micro-operation Caches in x86 Processors"* (MICRO 2020).
//!
//! This crate sits at the bottom of the workspace dependency graph and
//! defines the types every other crate speaks:
//!
//! * [`Addr`] — physical byte addresses and I-cache line arithmetic.
//! * [`Uop`] / [`UopKind`] — fixed-length (56-bit) micro-operations.
//! * [`DynInst`] / [`InstClass`] — dynamic x86-like instructions as they
//!   appear in a trace.
//! * [`PredictionWindow`] — the decoupled front-end fetch unit produced by
//!   the branch predictor (paper Section II-A).
//! * [`EntryTermination`] / [`PwTermination`] — the termination rules that
//!   govern uop cache entry and PW construction (paper Section II-B2).
//! * [`SplitMix64`] — a tiny deterministic RNG used for reproducible
//!   workload synthesis and stable per-uop hashes.
//! * [`Histogram`] / [`RunningStat`] — bookkeeping used by every stats
//!   module in the workspace.
//! * [`CancelToken`] / [`FailureKind`] — cooperative cancellation and the
//!   stable failure vocabulary shared by the worker pool, the pipeline,
//!   and the serving layer.
//! * [`json`] — the workspace's dependency-free JSON wire format, with
//!   `#[derive(ToJson, FromJson)]` re-exported from `ucsim-derive`.
//!
//! # Example
//!
//! ```
//! use ucsim_model::{Addr, ICACHE_LINE_BYTES};
//!
//! let a = Addr::new(0x40_0123);
//! assert_eq!(a.line_offset(), 0x23);
//! assert_eq!(a.line().base().get(), 0x40_0100);
//! assert_eq!(ICACHE_LINE_BYTES, 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// Derived `ToJson`/`FromJson` impls name this crate by its external path
// (`ucsim_model::json::...`); this alias makes those paths resolve when a
// derive expands inside the crate itself.
extern crate self as ucsim_model;

pub mod json;

mod addr;
mod cancel;
mod failure;
mod hist;
mod inst;
mod pw;
mod rng;
mod term;
mod uop;
mod workload;

pub use addr::{Addr, LineAddr, ICACHE_LINE_BYTES, ICACHE_LINE_SHIFT};
pub use cancel::CancelToken;
pub use failure::FailureKind;
pub use hist::{Histogram, RunningStat};
pub use inst::{BranchExec, DynInst, InstClass};
pub use json::{FromJson, Json, JsonError, ToJson};
pub use pw::{PredictionWindow, PwId, PwTermination};
pub use rng::{mix64, SplitMix64};
pub use term::EntryTermination;
pub use ucsim_derive::{FromJson, ToJson};
pub use uop::{Uop, UopKind, IMM_DISP_BYTES, UOP_BYTES};
pub use workload::WorkloadRef;

//! The tagged workload reference: *which instruction stream a job runs*.
//!
//! Since PR 10 a job's `workload` is no longer restricted to the 13
//! Table II profile names — it can reference a user-uploaded resource by
//! content address:
//!
//! * `Profile("redis")` — a synthetic Table II profile (or an enabled
//!   test pseudo-workload);
//! * `Program(hash)` — a ucasm program uploaded via `POST /v1/programs`;
//! * `Trace(hash)` — a recorded instruction trace (the std big-endian
//!   `UCT1` format) uploaded the same way.
//!
//! On the wire (API v1.2) the reference is a tagged object —
//! `{"profile":"redis"}`, `{"program":"<16-hex>"}` or
//! `{"trace":"<16-hex>"}` — with the bare string form kept as a
//! one-release deprecated alias. Internally (canonical [`JobSpec`]
//! encodings, trace keys, store records, peer forwarding) the reference
//! is always the *normalized ref string*: the bare profile name, or
//! `program:<16-hex>` / `trace:<16-hex>`. Keeping profile names unprefixed
//! preserves every pre-v1.2 content address.
//!
//! [`JobSpec`]: https://docs.rs/ucsim-serve

use crate::json::Json;

/// A parsed workload reference. See the module docs for the wire forms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum WorkloadRef {
    /// A named synthetic profile (Table II or test pseudo-workload).
    Profile(String),
    /// A content-addressed ucasm program resource.
    Program(u64),
    /// A content-addressed recorded-trace resource.
    Trace(u64),
}

/// Formats a content hash the way resource ids appear on the wire.
fn format_hash(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Parses a resource id (1–16 hex digits, as `POST /v1/programs` returns).
fn parse_hash(hex: &str) -> Result<u64, String> {
    if hex.is_empty() || hex.len() > 16 {
        return Err(format!("bad resource id {hex:?}: want up to 16 hex digits"));
    }
    u64::from_str_radix(hex, 16).map_err(|_| format!("bad resource id {hex:?}: not hexadecimal"))
}

impl WorkloadRef {
    /// Parses a normalized ref string (`program:<hex>`, `trace:<hex>`,
    /// or a bare profile name).
    ///
    /// # Errors
    ///
    /// A human-readable message when a `program:`/`trace:` prefix carries
    /// a malformed hash. Bare names never fail — whether the profile
    /// exists is the caller's concern.
    pub fn parse(s: &str) -> Result<WorkloadRef, String> {
        if let Some(hex) = s.strip_prefix("program:") {
            return parse_hash(hex).map(WorkloadRef::Program);
        }
        if let Some(hex) = s.strip_prefix("trace:") {
            return parse_hash(hex).map(WorkloadRef::Trace);
        }
        Ok(WorkloadRef::Profile(s.to_owned()))
    }

    /// Parses the wire `workload` member: a tagged object
    /// (`{"profile":…}` | `{"program":…}` | `{"trace":…}`) or — as the
    /// deprecated v1.1 alias — a bare string in ref-string syntax.
    ///
    /// # Errors
    ///
    /// A human-readable message for the `bad_request` envelope.
    pub fn from_json(v: &Json) -> Result<WorkloadRef, String> {
        if let Some(s) = v.as_str() {
            return WorkloadRef::parse(s);
        }
        let tags = [
            ("profile", v.get("profile")),
            ("program", v.get("program")),
            ("trace", v.get("trace")),
        ];
        let mut found = tags.iter().filter(|(_, m)| m.is_some());
        let (Some((tag, Some(member))), None) = (found.next(), found.next()) else {
            return Err("workload must be a string or exactly one of \
                 {\"profile\":…}, {\"program\":…}, {\"trace\":…}"
                .to_owned());
        };
        let value = member
            .as_str()
            .ok_or_else(|| format!("workload.{tag} must be a string"))?;
        match *tag {
            "profile" => Ok(WorkloadRef::Profile(value.to_owned())),
            "program" => parse_hash(value).map(WorkloadRef::Program),
            _ => parse_hash(value).map(WorkloadRef::Trace),
        }
    }

    /// The normalized ref string — the form stored in canonical job
    /// specs, trace keys and store records.
    pub fn to_ref_string(&self) -> String {
        match self {
            WorkloadRef::Profile(name) => name.clone(),
            WorkloadRef::Program(h) => format!("program:{}", format_hash(*h)),
            WorkloadRef::Trace(h) => format!("trace:{}", format_hash(*h)),
        }
    }

    /// The tagged wire object (the non-deprecated v1.2 request form).
    pub fn to_json(&self) -> Json {
        let (tag, value) = match self {
            WorkloadRef::Profile(name) => ("profile", name.clone()),
            WorkloadRef::Program(h) => ("program", format_hash(*h)),
            WorkloadRef::Trace(h) => ("trace", format_hash(*h)),
        };
        Json::Obj(vec![(tag.to_owned(), Json::Str(value))])
    }

    /// A short human label for sweep ledgers and metrics: the profile
    /// name, or `prog-`/`trace-` plus the first 8 hex digits of the hash
    /// — collision-free across resources without dragging the full hash
    /// into every Prometheus label.
    pub fn short_label(&self) -> String {
        match self {
            WorkloadRef::Profile(name) => name.clone(),
            WorkloadRef::Program(h) => format!("prog-{}", &format_hash(*h)[..8]),
            WorkloadRef::Trace(h) => format!("trace-{}", &format_hash(*h)[..8]),
        }
    }

    /// The referenced resource hash, if this is not a profile.
    pub fn resource_hash(&self) -> Option<u64> {
        match self {
            WorkloadRef::Profile(_) => None,
            WorkloadRef::Program(h) | WorkloadRef::Trace(h) => Some(*h),
        }
    }
}

impl std::fmt::Display for WorkloadRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_ref_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ref_strings_round_trip() {
        for s in [
            "redis",
            "program:00000000deadbeef",
            "trace:0000000000000001",
        ] {
            let r = WorkloadRef::parse(s).unwrap();
            assert_eq!(r.to_ref_string(), s);
        }
        // Short hex normalizes to the padded 16-digit form.
        assert_eq!(
            WorkloadRef::parse("program:ff").unwrap().to_ref_string(),
            "program:00000000000000ff"
        );
    }

    #[test]
    fn profile_names_with_colons_stay_profiles() {
        // The test pseudo-workload syntax must not be mistaken for a ref.
        let r = WorkloadRef::parse("test-sleep:50").unwrap();
        assert_eq!(r, WorkloadRef::Profile("test-sleep:50".to_owned()));
    }

    #[test]
    fn bad_hashes_are_rejected() {
        assert!(WorkloadRef::parse("program:").is_err());
        assert!(WorkloadRef::parse("program:zz").is_err());
        assert!(WorkloadRef::parse("trace:0123456789abcdef0").is_err());
    }

    #[test]
    fn tagged_json_and_string_alias_both_parse() {
        let tagged = Json::parse(r#"{"program":"00000000deadbeef"}"#).unwrap();
        assert_eq!(
            WorkloadRef::from_json(&tagged).unwrap(),
            WorkloadRef::Program(0xdead_beef)
        );
        let alias = Json::Str("redis".to_owned());
        assert_eq!(
            WorkloadRef::from_json(&alias).unwrap(),
            WorkloadRef::Profile("redis".to_owned())
        );
        let prefixed = Json::Str("trace:10".to_owned());
        assert_eq!(
            WorkloadRef::from_json(&prefixed).unwrap(),
            WorkloadRef::Trace(0x10)
        );
    }

    #[test]
    fn ambiguous_or_empty_tags_are_rejected() {
        for bad in [
            r#"{"profile":"redis","program":"ff"}"#,
            r#"{}"#,
            r#"{"program":7}"#,
            r#"{"workloadz":"redis"}"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(WorkloadRef::from_json(&v).is_err(), "{bad} must not parse");
        }
    }

    #[test]
    fn tagged_encoding_round_trips() {
        for r in [
            WorkloadRef::Profile("bm-cc".to_owned()),
            WorkloadRef::Program(0xabc),
            WorkloadRef::Trace(u64::MAX),
        ] {
            let back = WorkloadRef::from_json(&r.to_json()).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn short_labels_are_stable() {
        assert_eq!(
            WorkloadRef::Profile("redis".to_owned()).short_label(),
            "redis"
        );
        assert_eq!(
            WorkloadRef::Program(0xdead_beef).short_label(),
            "prog-00000000"
        );
        assert_eq!(
            WorkloadRef::Trace(0x0123_4567_89ab_cdef).short_label(),
            "trace-01234567"
        );
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds in environments with no crates.io access, so this
//! vendored crate implements the subset of proptest's API the test suite
//! actually uses: the `proptest!` macro, range / tuple / collection
//! strategies, `any::<bool>()`, `prop_map`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **Deterministic**: cases derive from a fixed seed mixed with the test
//!   name, so failures reproduce exactly across runs and machines.
//! * **No shrinking**: a failing case reports its inputs (via the panic
//!   message's case index) but is not minimized.
//! * Only the strategy combinators used in-tree are provided.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Deterministic 64-bit RNG (SplitMix64) driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a case seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift bounded sampling; bias is negligible for test use.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values of type `Value`.
///
/// Unlike real proptest there is no value tree or shrinking; a strategy
/// simply samples from a [`TestRng`].
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every value is in range.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident : $i:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;

    /// The full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for a primitive, produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! arbitrary_prim {
    ($($t:ty => |$rng:ident| $body:expr;)*) => {$(
        impl Strategy for AnyStrategy<$t> {
            type Value = $t;
            fn sample(&self, $rng: &mut TestRng) -> $t {
                $body
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

arbitrary_prim! {
    bool => |rng| rng.next_u64() & 1 == 1;
    u8 => |rng| rng.next_u64() as u8;
    u16 => |rng| rng.next_u64() as u16;
    u32 => |rng| rng.next_u64() as u32;
    u64 => |rng| rng.next_u64();
    usize => |rng| rng.next_u64() as usize;
    i64 => |rng| rng.next_u64() as i64;
    f64 => |rng| rng.unit_f64();
}

/// Returns the full-domain strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner configuration (`ProptestConfig`).
pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed property within a test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Result type of one property-test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// Mixes a test name into the base seed so distinct tests see distinct
/// streams. Used by the `proptest!` macro.
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Defines property tests: each `fn` body runs for many sampled inputs.
///
/// Supported grammar (a subset of real proptest's):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in 0u32..10, v in prop::collection::vec(any::<bool>(), 1..5)) {
///         prop_assert!(v.len() < 5);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@fns ($cfg:expr); ) => {};
    (@fns ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            for case in 0..config.cases {
                let seed = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)), case);
                let mut rng = $crate::TestRng::new(seed);
                $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} (seed {:#x}) failed: {}",
                        case + 1, config.cases, seed, e
                    );
                }
            }
        }
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            l, r, ::std::format!($($fmt)*)
        );
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} == {:?}: {}",
            l, r, ::std::format!($($fmt)*)
        );
    }};
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, Just, Strategy, TestRng};

    /// Namespace alias so `prop::collection::vec(...)` works.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (3u8..7).sample(&mut rng);
            assert!((3..7).contains(&v));
            let w = (1u8..=8).sample(&mut rng);
            assert!((1..=8).contains(&w));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let strat = prop::collection::vec((0u64..100, any::<bool>()), 1..20);
        let a = strat.sample(&mut TestRng::new(42));
        let b = strat.sample(&mut TestRng::new(42));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_and_asserts(x in 0u32..10, v in prop::collection::vec(0u8..3, 1..5)) {
            prop_assert!(x < 10);
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert_ne!(v.len(), 0);
        }

        #[test]
        fn mapped_strategies_work(y in (0u32..5).prop_map(|v| v * 2)) {
            prop_assert_eq!(y % 2, 0);
            prop_assert!(y < 10);
        }
    }
}

//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use — groups,
//! throughput annotation, `bench_function`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with plain wall-clock
//! timing: a short warm-up, then a fixed number of timed samples whose
//! median is reported. No statistics, plots, or saved baselines.
//!
//! Benches honour the standard libtest-style flags enough to stay usable
//! under `cargo test --benches` (`--test`/`--bench` filters are accepted
//! and ignored; in test mode each bench body runs once).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Opaque identity function preventing the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration (reported as elem/s).
    Elements(u64),
    /// Bytes processed per iteration (reported as B/s).
    Bytes(u64),
}

/// One completed benchmark measurement, retained by [`Criterion`] so
/// harness binaries can emit machine-readable results (`BENCH_*.json`)
/// instead of scraping stdout.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id (`group/name`).
    pub id: String,
    /// Median per-iteration wall-clock time.
    pub median: Duration,
    /// The group's throughput annotation, if any.
    pub throughput: Option<Throughput>,
}

impl Measurement {
    /// Elements (or bytes) per second implied by the median, when a
    /// throughput annotation was set and the median is non-zero.
    pub fn rate(&self) -> Option<f64> {
        let n = match self.throughput? {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        };
        (!self.median.is_zero()).then(|| n as f64 / self.median.as_secs_f64())
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    /// Median per-iteration time of the timed samples.
    sample_median: Duration,
    test_mode: bool,
    samples: usize,
}

impl Bencher {
    /// Calls `routine` repeatedly, recording its median execution time.
    pub fn iter<T, R: FnMut() -> T>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up: a few untimed runs.
        for _ in 0..2 {
            black_box(routine());
        }
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                black_box(routine());
                t0.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.sample_median = times[times.len() / 2];
    }
}

/// The top-level harness; each bench target gets one.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" => {}
                "--test" => test_mode = true,
                "--exact" | "--nocapture" | "-q" | "--quiet" => {}
                s if s.starts_with('-') => {
                    // Unknown flag: skip a value if one follows.
                    if let Some(v) = args.peek() {
                        if !v.starts_with('-') {
                            args.next();
                        }
                    }
                }
                s => filter = Some(s.to_owned()),
            }
        }
        Criterion {
            filter,
            test_mode,
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            samples: 30,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let (filter, test_mode) = (self.filter.clone(), self.test_mode);
        if let Some(m) = run_one(id, None, 30, filter.as_deref(), test_mode, f) {
            self.measurements.push(m);
        }
        self
    }

    /// Every measurement completed so far (timed mode only; filtered-out
    /// and test-mode runs record nothing).
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }
}

/// A group of benchmarks sharing a name prefix and throughput annotation.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        let filter = self.criterion.filter.clone();
        if let Some(m) = run_one(
            &full,
            self.throughput,
            self.samples,
            filter.as_deref(),
            self.criterion.test_mode,
            f,
        ) {
            self.criterion.measurements.push(m);
        }
        self
    }

    /// Ends the group (kept for API compatibility; no-op).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    samples: usize,
    filter: Option<&str>,
    test_mode: bool,
    mut f: F,
) -> Option<Measurement> {
    if let Some(pat) = filter {
        if !id.contains(pat) {
            return None;
        }
    }
    let mut b = Bencher {
        sample_median: Duration::ZERO,
        test_mode,
        samples,
    };
    f(&mut b);
    if test_mode {
        println!("test {id} ... ok");
        return None;
    }
    let t = b.sample_median;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if !t.is_zero() => {
            format!("  {:.1} Melem/s", n as f64 / t.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if !t.is_zero() => {
            format!("  {:.1} MB/s", n as f64 / t.as_secs_f64() / 1e6)
        }
        _ => String::new(),
    };
    println!("{id:<40} median {t:>12.3?}{rate}");
    Some(Measurement {
        id: id.to_owned(),
        median: t,
        throughput,
    })
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
            measurements: Vec::new(),
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(10)).sample_size(3);
            g.bench_function("one", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran >= 1);
    }

    #[test]
    fn measurements_are_retained_in_timed_mode() {
        let mut c = Criterion {
            filter: None,
            test_mode: false,
            measurements: Vec::new(),
        };
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(1_000)).sample_size(3);
            g.bench_function("spin", |b| b.iter(|| black_box(7u64.pow(3))));
            g.finish();
        }
        let ms = c.measurements();
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].id, "g/spin");
        assert!(ms[0].rate().is_some());
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("match-me".into()),
            test_mode: true,
            measurements: Vec::new(),
        };
        let mut ran = false;
        c.bench_function("other", |b| b.iter(|| ran = true));
        assert!(!ran);
        c.bench_function("match-me-too", |b| b.iter(|| ran = true));
        assert!(ran);
    }
}

//! End-to-end tests of the `ucsim-serve` job service: a real server on an
//! ephemeral port, real TCP clients, request coalescing, the content
//! cache, backpressure, and graceful drain.

use std::time::{Duration, Instant};

use ucsim::model::Json;
use ucsim::serve::{request, Server, ServerConfig};

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_capacity: 8,
        cache_budget_bytes: 8 * 1024 * 1024,
        retry_after_secs: 2,
        retain_jobs: 64,
        enable_test_workloads: true,
    }
}

fn parse_json(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("bad JSON from server: {e}\n{body}"))
}

/// The acceptance-criteria test: the same job submitted from four
/// concurrent clients yields byte-identical responses, exactly one
/// simulation, and a consistent `/v1/metrics` document.
#[test]
fn concurrent_identical_jobs_coalesce_to_one_simulation() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr().to_string();

    // The worker holds the job for 500 ms before simulating, so all four
    // clients are in flight together and coalesce deterministically.
    let body = br#"{"workload":"test-sleep:500","seed":1,"warmup":500,"insts":5000}"#;

    let responses: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || request(&addr, "POST", "/v1/sim", body).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for r in &responses {
        assert_eq!(r.status, 200, "body: {}", r.body_str());
    }
    // All four responses are byte-identical.
    for r in &responses[1..] {
        assert_eq!(
            r.body, responses[0].body,
            "responses differ between clients"
        );
    }
    // Exactly one simulation ran.
    assert_eq!(server.simulations_executed(), 1);

    let env = parse_json(&responses[0].body_str());
    assert_eq!(env.get("cached").unwrap().as_bool(), Some(false));
    let report = env.get("report").expect("envelope carries the report");
    assert!(report.get("upc").unwrap().as_f64().unwrap() > 0.0);

    // A later identical request is served from the cache, same report.
    let again = request(&addr, "POST", "/v1/sim", body).unwrap();
    assert_eq!(again.status, 200);
    let env2 = parse_json(&again.body_str());
    assert_eq!(env2.get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(env2.get("key").unwrap(), env.get("key").unwrap());
    assert_eq!(env2.get("report").unwrap(), report);
    assert_eq!(
        server.simulations_executed(),
        1,
        "cache hit must not re-run"
    );

    // /v1/metrics is consistent with what just happened.
    let m = request(&addr, "GET", "/v1/metrics", b"").unwrap();
    assert_eq!(m.status, 200);
    let m = parse_json(&m.body_str());
    let workers = m.get("workers").unwrap();
    assert_eq!(workers.get("count").unwrap().as_u64(), Some(2));
    assert_eq!(workers.get("jobs_executed").unwrap().as_u64(), Some(1));
    assert_eq!(workers.get("busy").unwrap().as_u64(), Some(0));
    let queue = m.get("queue").unwrap();
    assert_eq!(queue.get("depth").unwrap().as_u64(), Some(0));
    assert_eq!(queue.get("capacity").unwrap().as_u64(), Some(8));
    let cache = m.get("cache").unwrap();
    // Three coalesced joiners + one resident-cache hit.
    assert_eq!(cache.get("hits").unwrap().as_u64(), Some(4));
    assert_eq!(cache.get("coalesced").unwrap().as_u64(), Some(3));
    // Each of the four concurrent lookups missed before coalescing.
    assert_eq!(cache.get("misses").unwrap().as_u64(), Some(4));
    assert_eq!(cache.get("entries").unwrap().as_u64(), Some(1));
    // 4 coalesced + 1 cached = 5 (a request is counted after it is
    // answered, so this metrics read doesn't see itself).
    assert!(m.get("requests").unwrap().as_u64().unwrap() >= 5);
    let lat = m.get("latency_us").unwrap();
    assert_eq!(
        lat.get("POST /v1/sim")
            .unwrap()
            .get("total")
            .unwrap()
            .as_u64(),
        Some(5)
    );

    server.shutdown();
}

/// A full queue answers 429 + `Retry-After` immediately — it never blocks
/// the client or panics the server — and the drain still completes.
#[test]
fn full_queue_returns_429_with_retry_after() {
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..test_config()
    })
    .unwrap();
    let addr = server.local_addr().to_string();

    // Job A occupies the single worker for 600 ms.
    let a = request(
        &addr,
        "POST",
        "/v1/sim",
        br#"{"workload":"test-sleep:600","warmup":100,"insts":2000,"background":true}"#,
    )
    .unwrap();
    assert_eq!(a.status, 202, "body: {}", a.body_str());
    let a_id = parse_json(&a.body_str())
        .get("id")
        .unwrap()
        .as_u64()
        .unwrap();
    // Let the worker pop A off the queue.
    std::thread::sleep(Duration::from_millis(150));

    // Job B fills the (capacity-1) queue.
    let b = request(
        &addr,
        "POST",
        "/v1/sim",
        br#"{"workload":"test-sleep:601","warmup":100,"insts":2000,"background":true}"#,
    )
    .unwrap();
    assert_eq!(b.status, 202, "body: {}", b.body_str());

    // Job C must be rejected immediately with backpressure headers.
    let t0 = Instant::now();
    let c = request(
        &addr,
        "POST",
        "/v1/sim",
        br#"{"workload":"test-sleep:602","warmup":100,"insts":2000,"background":true}"#,
    )
    .unwrap();
    let elapsed = t0.elapsed();
    assert_eq!(c.status, 429, "body: {}", c.body_str());
    assert_eq!(c.header("retry-after"), Some("2"));
    assert!(
        elapsed < Duration::from_millis(500),
        "429 must not block (took {elapsed:?})"
    );
    let m = parse_json(
        &request(&addr, "GET", "/v1/metrics", b"")
            .unwrap()
            .body_str(),
    );
    assert_eq!(
        m.get("queue")
            .unwrap()
            .get("rejected_429")
            .unwrap()
            .as_u64(),
        Some(1)
    );

    // Poll job A until it completes.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let r = request(&addr, "GET", &format!("/v1/jobs/{a_id}"), b"").unwrap();
        assert_eq!(r.status, 200);
        let j = parse_json(&r.body_str());
        match j.get("status").unwrap().as_str().unwrap() {
            "done" => {
                let resp = j.get("response").expect("done job embeds its response");
                assert_eq!(resp.get("cached").unwrap().as_bool(), Some(false));
                assert!(resp.get("report").is_some());
                break;
            }
            "failed" => panic!("job failed: {}", r.body_str()),
            _ => {
                assert!(Instant::now() < deadline, "job never finished");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }

    // Graceful drain: B is still queued or running; shutdown waits for it.
    server.shutdown();
}

/// Unknown workloads and malformed bodies are 400s; unknown paths 404;
/// wrong methods 405. None of them disturb the queue.
#[test]
fn error_paths_answer_without_side_effects() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr().to_string();

    let r = request(&addr, "POST", "/v1/sim", br#"{"workload":"no-such-wl"}"#).unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body_str().contains("unknown workload"));

    let r = request(&addr, "POST", "/v1/sim", b"{not json").unwrap();
    assert_eq!(r.status, 400);

    let r = request(&addr, "GET", "/v1/jobs/999", b"").unwrap();
    assert_eq!(r.status, 404);

    let r = request(&addr, "GET", "/nope", b"").unwrap();
    assert_eq!(r.status, 404);

    let r = request(&addr, "GET", "/v1/sim", b"").unwrap();
    assert_eq!(r.status, 405);

    let r = request(&addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(r.status, 200);

    assert_eq!(server.simulations_executed(), 0);
    let m = parse_json(
        &request(&addr, "GET", "/v1/metrics", b"")
            .unwrap()
            .body_str(),
    );
    assert_eq!(
        m.get("queue").unwrap().get("depth").unwrap().as_u64(),
        Some(0)
    );
    server.shutdown();
}

/// A real Table II workload runs end to end through the service and the
/// returned report decodes as a SimReport.
#[test]
fn real_workload_round_trips_through_the_service() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr().to_string();

    let body = br#"{"workload":"bm-cc","seed":7,"warmup":1000,"insts":20000}"#;
    let r = request(&addr, "POST", "/v1/sim", body).unwrap();
    assert_eq!(r.status, 200, "body: {}", r.body_str());
    let env = parse_json(&r.body_str());
    let report_text = env.get("report").unwrap().to_string();
    let report =
        <ucsim::pipeline::SimReport as ucsim::model::FromJson>::from_json_str(&report_text)
            .expect("report decodes as SimReport");
    // The simulator stops at a prediction-window boundary, so the count
    // lands a handful of instructions under the requested 20000.
    assert!(report.insts >= 19000, "insts = {}", report.insts);
    assert!(report.upc > 0.0);

    // Same spec again: cached, and the decoded report is identical.
    let r2 = request(&addr, "POST", "/v1/sim", body).unwrap();
    let env2 = parse_json(&r2.body_str());
    assert_eq!(env2.get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(env2.get("report").unwrap().to_string(), report_text);
    assert_eq!(server.simulations_executed(), 1);
    server.shutdown();
}

//! End-to-end tests of the `ucsim-serve` job service: a real server on an
//! ephemeral port, real TCP clients, request coalescing, the content
//! cache, matrix sweeps, the persistent store, keep-alive connections,
//! the uniform error envelope, backpressure, and graceful drain.

use std::time::{Duration, Instant};

use ucsim::model::Json;
use ucsim::serve::{request, Client, Server, ServerConfig};

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_capacity: 8,
        cache_budget_bytes: 8 * 1024 * 1024,
        retry_after_secs: 2,
        retain_jobs: 64,
        enable_test_workloads: true,
        ..ServerConfig::default()
    }
}

fn parse_json(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("bad JSON from server: {e}\n{body}"))
}

/// Decodes the uniform error envelope, returning `(code, retry_after)`.
fn envelope_code(body: &str) -> (String, Option<u64>) {
    let v = parse_json(body);
    let e = v
        .get("error")
        .unwrap_or_else(|| panic!("no envelope in {body}"));
    assert!(e.get("message").and_then(Json::as_str).is_some());
    (
        e.get("code").unwrap().as_str().unwrap().to_owned(),
        e.get("retry_after").and_then(Json::as_u64),
    )
}

/// Polls `GET /v1/matrix/:id` on a kept-alive connection until the sweep
/// finishes, returning the final document.
fn poll_sweep(client: &mut Client, id: u64) -> Json {
    let path = format!("/v1/matrix/{id}");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let r = client.request("GET", &path, b"").unwrap();
        assert_eq!(r.status, 200, "body: {}", r.body_str());
        let v = parse_json(&r.body_str());
        match v.get("state").unwrap().as_str().unwrap() {
            "done" => return v,
            "failed" => panic!("sweep failed: {}", r.body_str()),
            _ => {
                assert!(Instant::now() < deadline, "sweep never finished");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// The acceptance-criteria test: the same job submitted from four
/// concurrent clients yields byte-identical responses, exactly one
/// simulation, and a consistent `/v1/metrics` document.
#[test]
fn concurrent_identical_jobs_coalesce_to_one_simulation() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr().to_string();

    // The worker holds the job for 500 ms before simulating, so all four
    // clients are in flight together and coalesce deterministically.
    let body = br#"{"workload":"test-sleep:500","seed":1,"warmup":500,"insts":5000}"#;

    let responses: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                s.spawn(move || request(&addr, "POST", "/v1/sim", body).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    for r in &responses {
        assert_eq!(r.status, 200, "body: {}", r.body_str());
    }
    // All four responses are byte-identical.
    for r in &responses[1..] {
        assert_eq!(
            r.body, responses[0].body,
            "responses differ between clients"
        );
    }
    // Exactly one simulation ran.
    assert_eq!(server.simulations_executed(), 1);

    let env = parse_json(&responses[0].body_str());
    assert_eq!(env.get("cached").unwrap().as_bool(), Some(false));
    let report = env.get("report").expect("envelope carries the report");
    assert!(report.get("upc").unwrap().as_f64().unwrap() > 0.0);

    // A later identical request is served from the cache, same report.
    let again = request(&addr, "POST", "/v1/sim", body).unwrap();
    assert_eq!(again.status, 200);
    let env2 = parse_json(&again.body_str());
    assert_eq!(env2.get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(env2.get("key").unwrap(), env.get("key").unwrap());
    assert_eq!(env2.get("report").unwrap(), report);
    assert_eq!(
        server.simulations_executed(),
        1,
        "cache hit must not re-run"
    );

    // /v1/metrics is consistent with what just happened.
    let m = request(&addr, "GET", "/v1/metrics", b"").unwrap();
    assert_eq!(m.status, 200);
    let m = parse_json(&m.body_str());
    let workers = m.get("workers").unwrap();
    assert_eq!(workers.get("count").unwrap().as_u64(), Some(2));
    assert_eq!(workers.get("jobs_executed").unwrap().as_u64(), Some(1));
    assert_eq!(workers.get("busy").unwrap().as_u64(), Some(0));
    let queue = m.get("queue").unwrap();
    assert_eq!(queue.get("depth").unwrap().as_u64(), Some(0));
    assert_eq!(queue.get("capacity").unwrap().as_u64(), Some(8));
    let cache = m.get("cache").unwrap();
    // Three coalesced joiners + one resident-cache hit.
    assert_eq!(cache.get("hits").unwrap().as_u64(), Some(4));
    assert_eq!(cache.get("coalesced").unwrap().as_u64(), Some(3));
    // Each of the four concurrent lookups missed before coalescing.
    assert_eq!(cache.get("misses").unwrap().as_u64(), Some(4));
    assert_eq!(cache.get("entries").unwrap().as_u64(), Some(1));
    // 4 coalesced + 1 cached = 5 (a request is counted after it is
    // answered, so this metrics read doesn't see itself).
    assert!(m.get("requests").unwrap().as_u64().unwrap() >= 5);
    let lat = m.get("latency_us").unwrap();
    assert_eq!(
        lat.get("POST /v1/sim")
            .unwrap()
            .get("total")
            .unwrap()
            .as_u64(),
        Some(5)
    );

    server.shutdown();
}

/// A full queue answers 429 + `Retry-After` immediately — it never blocks
/// the client or panics the server — and the drain still completes.
#[test]
fn full_queue_returns_429_with_retry_after() {
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..test_config()
    })
    .unwrap();
    let addr = server.local_addr().to_string();

    // Job A occupies the single worker for 600 ms.
    let a = request(
        &addr,
        "POST",
        "/v1/sim",
        br#"{"workload":"test-sleep:600","warmup":100,"insts":2000,"background":true}"#,
    )
    .unwrap();
    assert_eq!(a.status, 202, "body: {}", a.body_str());
    let a_id = parse_json(&a.body_str())
        .get("id")
        .unwrap()
        .as_u64()
        .unwrap();
    // Let the worker pop A off the queue.
    std::thread::sleep(Duration::from_millis(150));

    // Job B fills the (capacity-1) queue.
    let b = request(
        &addr,
        "POST",
        "/v1/sim",
        br#"{"workload":"test-sleep:601","warmup":100,"insts":2000,"background":true}"#,
    )
    .unwrap();
    assert_eq!(b.status, 202, "body: {}", b.body_str());

    // Job C must be rejected immediately with backpressure headers.
    let t0 = Instant::now();
    let c = request(
        &addr,
        "POST",
        "/v1/sim",
        br#"{"workload":"test-sleep:602","warmup":100,"insts":2000,"background":true}"#,
    )
    .unwrap();
    let elapsed = t0.elapsed();
    assert_eq!(c.status, 429, "body: {}", c.body_str());
    assert_eq!(c.header("retry-after"), Some("2"));
    // The envelope mirrors the Retry-After header into the body.
    let (code, retry) = envelope_code(&c.body_str());
    assert_eq!(code, "queue_full");
    assert_eq!(retry, Some(2));
    assert!(
        elapsed < Duration::from_millis(500),
        "429 must not block (took {elapsed:?})"
    );
    let m = parse_json(
        &request(&addr, "GET", "/v1/metrics", b"")
            .unwrap()
            .body_str(),
    );
    assert_eq!(
        m.get("queue")
            .unwrap()
            .get("rejected_429")
            .unwrap()
            .as_u64(),
        Some(1)
    );

    // Poll job A until it completes.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let r = request(&addr, "GET", &format!("/v1/jobs/{a_id}"), b"").unwrap();
        assert_eq!(r.status, 200);
        let j = parse_json(&r.body_str());
        match j.get("state").unwrap().as_str().unwrap() {
            "done" => {
                let resp = j.get("result").expect("done job embeds its result");
                assert_eq!(resp.get("cached").unwrap().as_bool(), Some(false));
                assert!(resp.get("report").is_some());
                break;
            }
            "failed" => panic!("job failed: {}", r.body_str()),
            _ => {
                assert!(Instant::now() < deadline, "job never finished");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }

    // Graceful drain: B is still queued or running; shutdown waits for it.
    server.shutdown();
}

/// Unknown workloads and malformed bodies are 400s; unknown paths 404;
/// wrong methods 405. None of them disturb the queue.
#[test]
fn error_paths_answer_without_side_effects() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr().to_string();

    let r = request(&addr, "POST", "/v1/sim", br#"{"workload":"no-such-wl"}"#).unwrap();
    assert_eq!(r.status, 400);
    assert!(r.body_str().contains("unknown workload"));
    assert_eq!(envelope_code(&r.body_str()).0, "unknown_workload");

    let r = request(&addr, "POST", "/v1/sim", b"{not json").unwrap();
    assert_eq!(r.status, 400);
    assert_eq!(envelope_code(&r.body_str()).0, "bad_request");

    let r = request(
        &addr,
        "POST",
        "/v1/matrix",
        br#"{"workloads":["bm-cc"],"policies":["zap"]}"#,
    )
    .unwrap();
    assert_eq!(r.status, 400);
    assert_eq!(envelope_code(&r.body_str()).0, "bad_request");

    let r = request(&addr, "GET", "/v1/jobs/999", b"").unwrap();
    assert_eq!(r.status, 404);
    assert_eq!(envelope_code(&r.body_str()).0, "not_found");

    let r = request(&addr, "GET", "/v1/matrix/999", b"").unwrap();
    assert_eq!(r.status, 404);
    assert_eq!(envelope_code(&r.body_str()).0, "not_found");

    let r = request(&addr, "GET", "/nope", b"").unwrap();
    assert_eq!(r.status, 404);
    assert_eq!(envelope_code(&r.body_str()).0, "not_found");

    let r = request(&addr, "GET", "/v1/sim", b"").unwrap();
    assert_eq!(r.status, 405);
    assert_eq!(envelope_code(&r.body_str()).0, "method_not_allowed");

    let r = request(&addr, "DELETE", "/v1/matrix", b"").unwrap();
    assert_eq!(r.status, 405);
    assert_eq!(envelope_code(&r.body_str()).0, "method_not_allowed");

    // The bare /healthz alias was removed in v1.1; only /v1/healthz lives.
    let r = request(&addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(r.status, 404);
    assert_eq!(envelope_code(&r.body_str()).0, "not_found");
    let r = request(&addr, "GET", "/v1/healthz", b"").unwrap();
    assert_eq!(r.status, 200);

    assert_eq!(server.simulations_executed(), 0);
    let m = parse_json(
        &request(&addr, "GET", "/v1/metrics", b"")
            .unwrap()
            .body_str(),
    );
    assert_eq!(
        m.get("queue").unwrap().get("depth").unwrap().as_u64(),
        Some(0)
    );
    server.shutdown();
}

/// A real Table II workload runs end to end through the service and the
/// returned report decodes as a SimReport.
#[test]
fn real_workload_round_trips_through_the_service() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr().to_string();

    let body = br#"{"workload":"bm-cc","seed":7,"warmup":1000,"insts":20000}"#;
    let r = request(&addr, "POST", "/v1/sim", body).unwrap();
    assert_eq!(r.status, 200, "body: {}", r.body_str());
    let env = parse_json(&r.body_str());
    let report_text = env.get("report").unwrap().to_string();
    let report =
        <ucsim::pipeline::SimReport as ucsim::model::FromJson>::from_json_str(&report_text)
            .expect("report decodes as SimReport");
    // The simulator stops at a prediction-window boundary, so the count
    // lands a handful of instructions under the requested 20000.
    assert!(report.insts >= 19000, "insts = {}", report.insts);
    assert!(report.upc > 0.0);

    // Same spec again: cached, and the decoded report is identical.
    let r2 = request(&addr, "POST", "/v1/sim", body).unwrap();
    let env2 = parse_json(&r2.body_str());
    assert_eq!(env2.get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(env2.get("report").unwrap().to_string(), report_text);
    assert_eq!(server.simulations_executed(), 1);
    server.shutdown();
}

/// The matrix acceptance test: a 2×2 capacity × policy sweep served via
/// `POST /v1/matrix` produces per-cell reports byte-identical (canonical
/// JSON) to direct `Simulator` runs over the same `MatrixCross`
/// expansion `run_matrix` uses offline — and the whole exchange rides a
/// single kept-alive connection.
#[test]
fn matrix_sweep_matches_direct_simulator_runs() {
    use ucsim::model::ToJson;
    use ucsim::pipeline::Simulator;
    use ucsim::trace::{Program, WorkloadProfile};
    use ucsim_bench::{MatrixCross, SweepPolicy};

    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::new(&addr);

    let body = br#"{"workloads":["bm-cc"],"capacities":[2048,4096],"policies":["baseline","clasp"],"seed":7,"warmup":1000,"insts":20000}"#;
    let r = client.request("POST", "/v1/matrix", body).unwrap();
    assert_eq!(r.status, 202, "body: {}", r.body_str());
    let accepted = parse_json(&r.body_str());
    let id = accepted.get("id").unwrap().as_u64().unwrap();
    assert_eq!(accepted.get("planned").unwrap().as_u64(), Some(4));

    let v = poll_sweep(&mut client, id);
    assert_eq!(v.get("done").unwrap().as_u64(), Some(4));
    assert_eq!(v.get("simulated").unwrap().as_u64(), Some(4));
    let sweep = v.get("report").expect("done sweep embeds the aggregate");
    assert_eq!(
        sweep.get("labels").unwrap().to_string(),
        r#"["OC_2K:baseline","OC_2K:CLASP","OC_4K:baseline","OC_4K:CLASP"]"#
    );

    // The offline reference: the same cross expanded through the same
    // shared code path, simulated directly.
    let cross = MatrixCross {
        capacities: vec![2048, 4096],
        policies: vec![SweepPolicy::Baseline, SweepPolicy::Clasp],
        max_entries: 2,
    };
    let mut profile = WorkloadProfile::by_name("bm-cc").unwrap();
    profile.seed = 7;
    let program = Program::generate(&profile);
    let cells = sweep.get("cells").unwrap().as_arr().unwrap();
    for (cell, lc) in cells.iter().zip(cross.expand()) {
        let mut cfg = lc.config.clone();
        cfg.warmup_insts = 1000;
        cfg.measure_insts = 20000;
        let expected = Simulator::new(cfg).run(&profile, &program).to_json_string();
        assert_eq!(
            cell.get("report").unwrap().to_string(),
            expected,
            "cell {} diverges from the direct run",
            lc.label
        );
        assert_eq!(cell.get("label").unwrap().as_str(), Some(lc.label.as_str()));
    }
    assert_eq!(server.simulations_executed(), 4);
    // Submit + every poll used one TCP connection.
    assert_eq!(client.connects(), 1);
    drop(client);
    server.shutdown();
}

/// A killed-and-restarted server answers a whole sweep from the
/// persistent store: zero re-simulations, all cells cache hits.
#[test]
fn restart_serves_sweep_from_persistent_store() {
    let data_dir = std::env::temp_dir().join(format!("ucsim-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let cfg = ServerConfig {
        data_dir: Some(data_dir.clone()),
        ..test_config()
    };
    let body = br#"{"workloads":["bm-cc"],"capacities":[2048],"policies":["baseline","clasp"],"seed":7,"warmup":1000,"insts":20000}"#;

    // First life: simulate the sweep and persist every cell.
    let first_sweep = {
        let server = Server::start(cfg.clone()).unwrap();
        let mut client = Client::new(&server.local_addr().to_string());
        let r = client.request("POST", "/v1/matrix", body).unwrap();
        assert_eq!(r.status, 202, "body: {}", r.body_str());
        let id = parse_json(&r.body_str())
            .get("id")
            .unwrap()
            .as_u64()
            .unwrap();
        let v = poll_sweep(&mut client, id);
        assert_eq!(server.simulations_executed(), 2);
        drop(client);
        server.shutdown();
        v.get("report").unwrap().to_string()
    };

    // Second life: same data dir. The same sweep completes without a
    // single simulation — every cell replays from the store.
    let server = Server::start(cfg).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::new(&addr);
    let r = client.request("POST", "/v1/matrix", body).unwrap();
    assert_eq!(r.status, 202, "body: {}", r.body_str());
    let id = parse_json(&r.body_str())
        .get("id")
        .unwrap()
        .as_u64()
        .unwrap();
    let v = poll_sweep(&mut client, id);
    assert_eq!(
        v.get("report").unwrap().to_string(),
        first_sweep,
        "restarted sweep must be byte-identical"
    );
    assert_eq!(server.simulations_executed(), 0, "no re-simulation");
    // Store-aware resume: the plan resolved every cell from the store.
    assert_eq!(v.get("planned").unwrap().as_u64(), Some(2));
    assert_eq!(v.get("skipped_from_store").unwrap().as_u64(), Some(2));
    assert_eq!(v.get("simulated").unwrap().as_u64(), Some(0));

    // The cache counters confirm both cells came from the replayed store.
    let m = parse_json(
        &client
            .request("GET", "/v1/metrics", b"")
            .unwrap()
            .body_str(),
    );
    let cache = m.get("cache").unwrap();
    assert_eq!(cache.get("hits").unwrap().as_u64(), Some(2));
    assert_eq!(cache.get("misses").unwrap().as_u64(), Some(0));
    assert_eq!(cache.get("insertions").unwrap().as_u64(), Some(2));
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}

/// A job that outlives the configured wall-clock deadline fails with a
/// 504 `deadline_exceeded` envelope; the worker survives (no respawn)
/// and keeps serving, and the late result is never treated as a job
/// success.
#[test]
fn deadline_exceeded_fails_the_job_with_504() {
    let server = Server::start(ServerConfig {
        workers: 1,
        job_deadline: Some(Duration::from_millis(200)),
        ..test_config()
    })
    .unwrap();
    let addr = server.local_addr().to_string();

    let t0 = Instant::now();
    let r = request(
        &addr,
        "POST",
        "/v1/sim",
        br#"{"workload":"test-sleep:800","warmup":100,"insts":2000}"#,
    )
    .unwrap();
    let elapsed = t0.elapsed();
    assert_eq!(r.status, 504, "body: {}", r.body_str());
    assert_eq!(envelope_code(&r.body_str()).0, "deadline_exceeded");
    // The waiter woke when the deadline fired, not when the sleep ended.
    assert!(
        elapsed < Duration::from_millis(700),
        "client should unblock at the deadline, took {elapsed:?}"
    );

    // The worker survived (cooperative cancellation, not a kill) and the
    // pool keeps serving fast jobs.
    let r2 = request(
        &addr,
        "POST",
        "/v1/sim",
        br#"{"workload":"test-sleep:10","warmup":100,"insts":2000}"#,
    )
    .unwrap();
    assert_eq!(r2.status, 200, "body: {}", r2.body_str());

    let m = parse_json(
        &request(&addr, "GET", "/v1/metrics", b"")
            .unwrap()
            .body_str(),
    );
    let workers = m.get("workers").unwrap();
    assert_eq!(
        workers.get("jobs_deadline_exceeded").unwrap().as_u64(),
        Some(1)
    );
    assert_eq!(workers.get("jobs_failed").unwrap().as_u64(), Some(1));
    assert_eq!(workers.get("workers_respawned").unwrap().as_u64(), Some(0));
    assert_eq!(workers.get("alive").unwrap().as_u64(), Some(1));
    server.shutdown();
}

/// Shutdown with jobs still queued: after the drain timeout, queued jobs
/// fail with a `shutting_down` envelope instead of hanging their
/// waiters; the in-flight job still completes.
#[test]
fn shutdown_fails_queued_jobs_with_shutting_down() {
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 4,
        drain_timeout: Duration::from_millis(200),
        ..test_config()
    })
    .unwrap();
    let addr = server.local_addr().to_string();

    let (running, queued) = std::thread::scope(|s| {
        // Occupies the single worker for ~800 ms.
        let a = {
            let addr = addr.clone();
            s.spawn(move || {
                request(
                    &addr,
                    "POST",
                    "/v1/sim",
                    br#"{"workload":"test-sleep:800","warmup":100,"insts":2000}"#,
                )
                .unwrap()
            })
        };
        std::thread::sleep(Duration::from_millis(150));
        // Sits in the queue behind it, its client blocked on the result.
        let b = {
            let addr = addr.clone();
            s.spawn(move || {
                request(
                    &addr,
                    "POST",
                    "/v1/sim",
                    br#"{"workload":"test-sleep:900","warmup":100,"insts":2000}"#,
                )
                .unwrap()
            })
        };
        std::thread::sleep(Duration::from_millis(100));
        server.shutdown();
        (a.join().unwrap(), b.join().unwrap())
    });

    // The in-flight job drained normally.
    assert_eq!(running.status, 200, "body: {}", running.body_str());
    // The queued job was failed explicitly — a terminal envelope, not a
    // hung connection.
    assert_eq!(queued.status, 503, "body: {}", queued.body_str());
    assert_eq!(envelope_code(&queued.body_str()).0, "shutting_down");
}

/// Two sequential requests ride one kept-alive connection, and the
/// server honors `Connection: close` when asked.
#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::new(&addr);

    let a = client.request("GET", "/v1/healthz", b"").unwrap();
    assert_eq!(a.status, 200);
    assert_eq!(a.header("connection"), Some("keep-alive"));

    let b = client
        .request(
            "POST",
            "/v1/sim",
            br#"{"workload":"test-sleep:50","warmup":100,"insts":2000}"#,
        )
        .unwrap();
    assert_eq!(b.status, 200, "body: {}", b.body_str());

    let c = client.request("GET", "/v1/metrics", b"").unwrap();
    assert_eq!(c.status, 200);
    assert_eq!(client.connects(), 1, "all three requests on one connection");

    drop(client);
    server.shutdown();
}

//! End-to-end tests of the bring-your-own-workload path (API v1.2):
//! ucasm/trace upload through `POST /v1/programs`, content-addressed
//! `program:`/`trace:` workload refs through `/v1/sim` and `/v1/matrix`,
//! byte-identity of served reports against direct in-process runs,
//! stable 422 envelopes for malformed uploads, store-backed resume, and
//! cross-node program fetch + replication in a two-node cluster.

use std::net::TcpListener;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use ucsim::isa::assemble;
use ucsim::model::{Json, ToJson};
use ucsim::pipeline::Simulator;
use ucsim::serve::{fnv1a, format_key, request, Client, Server, ServerConfig, SimRequest};
use ucsim::trace::{load_asm, Program, Trace, WorkloadProfile};

/// A small hand-written ucasm program: a hot loop calling two handlers.
const LOOP_ASM: &str = "\
.func main
top: alu 3
     load 4 imm=1
     calli f1,f2
     jcc top trip=16
     jmp top
.end
.func f1
     alu 3
     ret
.end
.func f2
     store 7 imm=2 uops=2
     ret
.end
";

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_capacity: 8,
        cache_budget_bytes: 8 * 1024 * 1024,
        ..ServerConfig::default()
    }
}

fn parse_json(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("bad JSON from server: {e}\n{body}"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ucsim-byow-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Uploads raw program bytes, asserting success, and returns the
/// response document.
fn upload(addr: &str, bytes: &[u8]) -> Json {
    let resp = request(addr, "POST", "/v1/programs", bytes).unwrap();
    assert!(
        resp.status == 201 || resp.status == 200,
        "upload failed: {} {}",
        resp.status,
        resp.body_str()
    );
    parse_json(&resp.body_str())
}

/// Polls `GET /v1/matrix/:id` until the sweep finishes.
fn poll_sweep(client: &mut Client, id: u64) -> Json {
    let path = format!("/v1/matrix/{id}");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let r = client.request("GET", &path, b"").unwrap();
        assert_eq!(r.status, 200, "body: {}", r.body_str());
        let v = parse_json(&r.body_str());
        match v.get("state").unwrap().as_str().unwrap() {
            "done" => return v,
            "failed" => panic!("sweep failed: {}", r.body_str()),
            _ => {
                assert!(Instant::now() < deadline, "sweep never finished");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Replicates the server's execution of `body` (a `/v1/sim` request whose
/// workload is a `program:` ref over `asm_src`) and returns the report
/// payload the server must splice into its envelope, byte for byte.
fn direct_program_report(body: &str, asm_src: &str) -> String {
    let req = SimRequest::parse(body).expect("test body parses");
    let spec = req.resolve(fnv1a(asm_src.as_bytes()));
    let profile = WorkloadProfile::user_program(spec.seed);
    let total = (spec.config.warmup_insts + spec.config.measure_insts) as usize;
    let program = load_asm(&assemble(asm_src).unwrap(), spec.seed);
    let report = Simulator::new(spec.config.clone())
        .run_stream(&spec.workload, program.walk(&profile).take(total));
    report.to_json_string()
}

#[test]
fn uploaded_asm_simulates_byte_identically_to_a_direct_run() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr().to_string();

    let doc = upload(&addr, LOOP_ASM.as_bytes());
    let id = format_key(fnv1a(LOOP_ASM.as_bytes()));
    assert_eq!(doc.get("id").unwrap().as_str(), Some(id.as_str()));
    assert_eq!(doc.get("kind").unwrap().as_str(), Some("asm"));
    assert_eq!(doc.get("created").unwrap().as_bool(), Some(true));
    let wref = doc.get("ref").unwrap().as_str().unwrap().to_owned();
    assert_eq!(wref, format!("program:{id}"));

    // v1.2 tagged-object form. The seed is omitted, so the server must
    // default it to the program's content address.
    let body = format!(r#"{{"workload":{{"program":"{id}"}},"warmup":500,"insts":3000}}"#);
    let resp = request(&addr, "POST", "/v1/sim", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body_str());
    let direct = direct_program_report(&body, LOOP_ASM);
    assert!(
        resp.body_str().contains(&format!("\"report\":{direct}")),
        "served report is not byte-identical to the direct run\nserved: {}\ndirect: {direct}",
        resp.body_str()
    );

    // Deprecated string alias: same content address, so the second
    // submission answers from cache with the identical report.
    let alias = format!(r#"{{"workload":"{wref}","warmup":500,"insts":3000}}"#);
    let resp2 = request(&addr, "POST", "/v1/sim", alias.as_bytes()).unwrap();
    assert_eq!(resp2.status, 200);
    let v2 = parse_json(&resp2.body_str());
    assert_eq!(v2.get("cached").unwrap().as_bool(), Some(true));
    assert!(resp2.body_str().contains(&format!("\"report\":{direct}")));

    server.shutdown();
}

#[test]
fn uploaded_trace_replays_byte_identically_and_matches_profile_cells() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr().to_string();

    // Record exactly the stream a "bm-cc" job of warmup 500 + insts 3000
    // would synthesize (the walker is deterministic in the profile seed).
    let profile = WorkloadProfile::by_name("bm-cc").unwrap();
    let program = Program::generate(&profile);
    let trace = Trace::record(program.walk(&profile).take(3500));
    let bytes = trace.to_bytes();

    let doc = upload(&addr, &bytes);
    assert_eq!(doc.get("kind").unwrap().as_str(), Some("trace"));
    let id = format_key(fnv1a(&bytes));
    let body = format!(r#"{{"workload":{{"trace":"{id}"}},"warmup":500,"insts":3000}}"#);
    let resp = request(&addr, "POST", "/v1/sim", body.as_bytes()).unwrap();
    assert_eq!(resp.status, 200, "body: {}", resp.body_str());

    // Byte-identity against a direct in-process replay of the upload.
    let req = SimRequest::parse(&body).unwrap();
    let spec = req.resolve(0); // trace refs default the (unused) seed to 0
    let direct = Simulator::new(spec.config.clone())
        .run_trace(&spec.workload, &trace)
        .to_json_string();
    assert!(
        resp.body_str().contains(&format!("\"report\":{direct}")),
        "served trace replay differs from the direct replay\nserved: {}",
        resp.body_str()
    );

    // The replayed upload must agree with the profile-synthesized cell on
    // every metric — only the workload name may differ.
    let prof_body = br#"{"workload":"bm-cc","warmup":500,"insts":3000}"#;
    let prof = request(&addr, "POST", "/v1/sim", prof_body).unwrap();
    assert_eq!(prof.status, 200);
    let trace_report = parse_json(&resp.body_str());
    let prof_report = parse_json(&prof.body_str());
    let (Some(Json::Obj(a)), Some(Json::Obj(b))) =
        (trace_report.get("report"), prof_report.get("report"))
    else {
        panic!("reports must be objects");
    };
    assert_eq!(a.len(), b.len());
    for ((ka, va), (kb, vb)) in a.iter().zip(b.iter()) {
        assert_eq!(ka, kb);
        if ka == "workload" {
            assert_eq!(va.as_str(), Some(format!("trace:{id}").as_str()));
            assert_eq!(vb.as_str(), Some("bm-cc"));
        } else {
            assert_eq!(va.to_string(), vb.to_string(), "field {ka} diverged");
        }
    }

    server.shutdown();
}

/// Decodes the uniform error envelope, returning the stable code.
fn envelope_code(body: &str) -> String {
    parse_json(body)
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no envelope in {body}"))
        .to_owned()
}

#[test]
fn malformed_uploads_and_unknown_refs_get_stable_envelopes() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr().to_string();

    // Malformed ucasm: instruction outside .func/.end.
    let r = request(&addr, "POST", "/v1/programs", b"alu 3\n").unwrap();
    assert_eq!(r.status, 422, "body: {}", r.body_str());
    assert_eq!(envelope_code(&r.body_str()), "invalid_program");

    // An entry function that returns is structurally invalid.
    let r = request(&addr, "POST", "/v1/programs", b".func m\nret\n.end\n").unwrap();
    assert_eq!(r.status, 422);
    assert_eq!(envelope_code(&r.body_str()), "invalid_program");

    // A truncated UCT1 trace: magic intact, body cut off.
    let profile = WorkloadProfile::by_name("bm-cc").unwrap();
    let program = Program::generate(&profile);
    let bytes = Trace::record(program.walk(&profile).take(64)).to_bytes();
    let r = request(&addr, "POST", "/v1/programs", &bytes[..12]).unwrap();
    assert_eq!(r.status, 422, "body: {}", r.body_str());
    assert_eq!(envelope_code(&r.body_str()), "invalid_program");

    // A well-formed ref to a program nobody uploaded.
    let r = request(
        &addr,
        "POST",
        "/v1/sim",
        br#"{"workload":"program:ffff","insts":1000}"#,
    )
    .unwrap();
    assert_eq!(r.status, 422, "body: {}", r.body_str());
    assert_eq!(envelope_code(&r.body_str()), "invalid_program");

    // An ambiguous tagged object is a plain bad request.
    let r = request(
        &addr,
        "POST",
        "/v1/sim",
        br#"{"workload":{"profile":"bm-cc","program":"ff"},"insts":1000}"#,
    )
    .unwrap();
    assert_eq!(r.status, 400, "body: {}", r.body_str());
    assert_eq!(envelope_code(&r.body_str()), "bad_request");

    server.shutdown();
}

#[test]
fn program_endpoints_list_show_and_serve_raw_bytes() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr().to_string();

    let asm_id = upload(&addr, LOOP_ASM.as_bytes())
        .get("id")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned();
    let profile = WorkloadProfile::by_name("bm-cc").unwrap();
    let program = Program::generate(&profile);
    let trace_bytes = Trace::record(program.walk(&profile).take(256)).to_bytes();
    upload(&addr, &trace_bytes);

    // Re-uploading the identical source is idempotent: 200, created=false.
    let resp = request(&addr, "POST", "/v1/programs", LOOP_ASM.as_bytes()).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(
        parse_json(&resp.body_str())
            .get("created")
            .unwrap()
            .as_bool(),
        Some(false)
    );

    let all = request(&addr, "GET", "/v1/programs", b"").unwrap();
    let listed = parse_json(&all.body_str());
    assert_eq!(
        listed.get("programs").unwrap().as_arr().unwrap().len(),
        2,
        "body: {}",
        all.body_str()
    );
    let asm_only = request(&addr, "GET", "/v1/programs?kind=asm", b"").unwrap();
    let listed = parse_json(&asm_only.body_str());
    let arr = listed.get("programs").unwrap().as_arr().unwrap();
    assert_eq!(arr.len(), 1);
    assert_eq!(arr[0].get("kind").unwrap().as_str(), Some("asm"));
    let bogus = request(&addr, "GET", "/v1/programs?kind=bogus", b"").unwrap();
    assert_eq!(bogus.status, 400);

    let meta = request(&addr, "GET", &format!("/v1/programs/{asm_id}"), b"").unwrap();
    assert_eq!(meta.status, 200);
    let meta = parse_json(&meta.body_str());
    assert_eq!(meta.get("kind").unwrap().as_str(), Some("asm"));
    assert_eq!(
        meta.get("bytes").unwrap().as_u64(),
        Some(LOOP_ASM.len() as u64)
    );

    // /raw serves the exact uploaded bytes.
    let raw = request(&addr, "GET", &format!("/v1/programs/{asm_id}/raw"), b"").unwrap();
    assert_eq!(raw.status, 200);
    assert_eq!(raw.body, LOOP_ASM.as_bytes());

    let missing = request(&addr, "GET", "/v1/programs/00000000000000ff", b"").unwrap();
    assert_eq!(missing.status, 404);
    assert_eq!(envelope_code(&missing.body_str()), "not_found");

    server.shutdown();
}

#[test]
fn program_sweeps_resume_from_the_store_without_resimulating() {
    let dir = temp_dir("resume");
    let cfg = ServerConfig {
        data_dir: Some(dir.clone()),
        ..test_config()
    };
    let server = Server::start(cfg.clone()).unwrap();
    let addr = server.local_addr().to_string();

    let doc = upload(&addr, LOOP_ASM.as_bytes());
    let wref = doc.get("ref").unwrap().as_str().unwrap().to_owned();
    let body = format!(
        r#"{{"workloads":["{wref}"],"capacities":[2048,4096],"policies":["baseline"],"warmup":200,"insts":2000}}"#
    );

    let mut client = Client::new(&addr);
    let resp = client
        .request("POST", "/v1/matrix", body.as_bytes())
        .unwrap();
    assert_eq!(resp.status, 202, "body: {}", resp.body_str());
    let id = parse_json(&resp.body_str())
        .get("id")
        .unwrap()
        .as_u64()
        .unwrap();
    let done = poll_sweep(&mut client, id);
    assert_eq!(done.get("planned").unwrap().as_u64(), Some(2));
    assert_eq!(done.get("simulated").unwrap().as_u64(), Some(2));
    // Ledger labels derive from the ref's short hash prefix.
    let cells = done.get("cells").unwrap().as_arr().unwrap();
    let short = &wref["program:".len().."program:".len() + 8];
    for c in cells {
        let label = c.get("label").unwrap().as_str().unwrap();
        assert!(
            label.starts_with(&format!("prog-{short}")),
            "cell label {label:?} does not carry the ref prefix"
        );
    }
    drop(client);
    server.shutdown();

    // Restart on the same store: the program record replays into the
    // registry and every cell resolves from the store — zero re-sims.
    let server = Server::start(cfg).unwrap();
    let addr = server.local_addr().to_string();
    let pid = doc.get("id").unwrap().as_str().unwrap();
    let meta = request(&addr, "GET", &format!("/v1/programs/{pid}"), b"").unwrap();
    assert_eq!(meta.status, 200, "program lost across restart");

    let mut client = Client::new(&addr);
    let resp = client
        .request("POST", "/v1/matrix", body.as_bytes())
        .unwrap();
    assert_eq!(resp.status, 202, "body: {}", resp.body_str());
    let id = parse_json(&resp.body_str())
        .get("id")
        .unwrap()
        .as_u64()
        .unwrap();
    let done = poll_sweep(&mut client, id);
    assert_eq!(done.get("simulated").unwrap().as_u64(), Some(0));
    assert_eq!(done.get("skipped_from_store").unwrap().as_u64(), Some(2));

    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Reserves `n` distinct loopback addresses by binding ephemeral
/// listeners, then releasing them for the servers to rebind.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("reserved addr").to_string())
        .collect()
}

/// Starts one node, retrying briefly if the reserved port is still held.
fn start_node(cfg: ServerConfig) -> Server {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match Server::start(cfg.clone()) {
            Ok(s) => return s,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("node failed to start on {}: {e}", cfg.addr),
        }
    }
}

#[test]
fn cluster_routes_program_jobs_by_content_address() {
    let addrs = reserve_addrs(2);
    let dirs = [temp_dir("fed-a"), temp_dir("fed-b")];
    let member = |i: usize| ServerConfig {
        addr: addrs[i].clone(),
        advertise: Some(addrs[i].clone()),
        peers: addrs.clone(),
        data_dir: Some(dirs[i].clone()),
        anti_entropy_interval: Duration::from_millis(150),
        ..test_config()
    };
    let a = start_node(member(0));
    let b = start_node(member(1));

    // Upload to node A only.
    let doc = upload(&addrs[0], LOOP_ASM.as_bytes());
    let id = doc.get("id").unwrap().as_str().unwrap().to_owned();
    let wref = doc.get("ref").unwrap().as_str().unwrap().to_owned();

    // Submitting the ref to node B works: B fetches the program from its
    // peer by content address before accepting the job.
    let body = format!(r#"{{"workload":"{wref}","warmup":200,"insts":2000}}"#);
    let via_b = request(&addrs[1], "POST", "/v1/sim", body.as_bytes()).unwrap();
    assert_eq!(via_b.status, 200, "body: {}", via_b.body_str());
    // ...and B now serves the program itself.
    let meta = request(&addrs[1], "GET", &format!("/v1/programs/{id}"), b"").unwrap();
    assert_eq!(meta.status, 200, "program not fetched to node B");

    // Node A answers the same spec with a byte-identical report.
    let via_a = request(&addrs[0], "POST", "/v1/sim", body.as_bytes()).unwrap();
    assert_eq!(via_a.status, 200, "body: {}", via_a.body_str());
    let report_a = parse_json(&via_a.body_str());
    let report_b = parse_json(&via_b.body_str());
    assert_eq!(
        report_a.get("report").unwrap().to_string(),
        report_b.get("report").unwrap().to_string(),
        "reports must be byte-identical across nodes"
    );
    // The cluster simulated the spec exactly once.
    assert_eq!(a.simulations_executed() + b.simulations_executed(), 1);

    // Anti-entropy replicates a program uploaded later to A over to B
    // without any job referencing it.
    let doc2 = upload(&addrs[0], b".func m\nl: alu 3\n jmp l\n.end\n");
    let id2 = doc2.get("id").unwrap().as_str().unwrap().to_owned();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let r = request(&addrs[1], "GET", &format!("/v1/programs/{id2}"), b"").unwrap();
        if r.status == 200 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "program never replicated to node B"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    a.shutdown();
    b.shutdown();
    for d in dirs {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn shipped_examples_assemble_upload_and_simulate() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr().to_string();
    let base = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples/asm");

    for name in ["dense_loop.asm", "fragmenter.asm", "dispatcher.asm"] {
        let src = std::fs::read_to_string(base.join(name))
            .unwrap_or_else(|e| panic!("cannot read example {name}: {e}"));
        let asm = assemble(&src).unwrap_or_else(|e| panic!("{name} does not assemble: {e}"));
        assert!(asm.static_insts() >= 3, "{name} is trivially small");

        // Offline: the example runs and commits uops.
        let seed = fnv1a(src.as_bytes());
        let profile = WorkloadProfile::user_program(seed);
        let program = load_asm(&asm, seed);
        let cfg = ucsim::pipeline::SimConfig::table1().with_insts(500, 5000);
        let report = Simulator::new(cfg).run_stream(
            &format!("program:{}", format_key(seed)),
            program.walk(&profile).take(5500),
        );
        assert!(report.upc > 0.0, "{name} made no progress");

        // Served: the example uploads as a fresh asm program.
        let doc = upload(&addr, src.as_bytes());
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("asm"), "{name}");
        assert_eq!(doc.get("created").unwrap().as_bool(), Some(true), "{name}");
    }

    server.shutdown();
}

//! The paper's schematic figures (2, 7, 8, 10, 13, 14) as concrete,
//! executable scenarios.

use ucsim::bpu::{BpuConfig, PwGenerator};
use ucsim::model::{Addr, BranchExec, DynInst, EntryTermination, InstClass, PwId, PwTermination};
use ucsim::uopcache::{
    AccumulationBuffer, CompactionPolicy, PlacementKind, UopCache, UopCacheConfig, UopCacheEntry,
};

fn alu(pc: u64, len: u8) -> DynInst {
    DynInst::simple(Addr::new(pc), len, InstClass::IntAlu)
}

fn taken_jmp(pc: u64, target: u64) -> DynInst {
    DynInst::branch(
        Addr::new(pc),
        2,
        InstClass::JumpDirect,
        BranchExec {
            taken: true,
            target: Addr::new(target),
        },
    )
}

fn nt_jcc(pc: u64, target: u64) -> DynInst {
    DynInst::branch(
        Addr::new(pc),
        2,
        InstClass::CondBranch,
        BranchExec {
            taken: false,
            target: Addr::new(target),
        },
    )
}

fn entry(start: u64, uops: u32, pw: u64) -> UopCacheEntry {
    UopCacheEntry {
        start: Addr::new(start),
        end: Addr::new(start + uops as u64 * 4),
        pw_id: PwId(pw),
        first_pw: PwId(pw),
        uops,
        imm_disp: 0,
        ucoded_insts: 0,
        insts: uops,
        term: EntryTermination::TakenBranch,
        ends_in_taken_branch: true,
        pc_lines: 1,
    }
}

/// Figure 2(a): a PW that starts at the beginning of an I-cache line and
/// terminates at its end, with a not-taken branch in the middle.
#[test]
fn fig2a_pw_full_line_with_nt_branch() {
    let mut insts: Vec<DynInst> = Vec::new();
    let mut pc = 0x1000u64;
    for i in 0..10 {
        if i == 3 {
            insts.push(nt_jcc(pc, 0x4000));
            pc += 2;
        } else {
            insts.push(alu(pc, 7));
            pc += 7;
        }
    }
    let mut gen = PwGenerator::new(BpuConfig::default(), insts.into_iter());
    let b = gen.advance().unwrap();
    assert_eq!(b.pw.start, Addr::new(0x1000));
    assert_eq!(b.pw.termination, PwTermination::IcacheLineEnd);
    assert!(b.pw.end.get() >= 0x1040, "PW runs to the line boundary");
    assert!(!b.pw.ends_in_taken_branch);
}

/// Figure 2(b): a PW starting mid-line (a branch target) terminates at
/// the end of the same line.
#[test]
fn fig2b_pw_starts_mid_line() {
    let insts = vec![
        taken_jmp(0x0800, 0x1020),
        alu(0x1020, 8),
        alu(0x1028, 8),
        alu(0x1030, 8),
        alu(0x1038, 8),
        alu(0x1040, 4),
    ];
    let mut gen = PwGenerator::new(BpuConfig::default(), insts.into_iter());
    let _jump_pw = gen.advance().unwrap();
    let b = gen.advance().unwrap();
    assert_eq!(b.pw.start, Addr::new(0x1020));
    assert_eq!(b.pw.end, Addr::new(0x1040));
    assert_eq!(b.pw.termination, PwTermination::IcacheLineEnd);
}

/// Figure 2(c): a PW starting mid-line ends early at a predicted-taken
/// branch.
#[test]
fn fig2c_pw_ends_at_taken_branch() {
    // Train the jump into the BTB first via a warmup pass.
    let loop_body = |base: u64| {
        vec![
            alu(base + 0x20, 4),
            nt_jcc(base + 0x24, 0x7000),
            taken_jmp(base + 0x26, base + 0x20),
        ]
    };
    let mut insts = Vec::new();
    for _ in 0..8 {
        insts.extend(loop_body(0x1000));
    }
    let mut gen = PwGenerator::new(BpuConfig::default(), insts.into_iter());
    let mut saw = false;
    while let Some(b) = gen.advance() {
        if b.pw.start == Addr::new(0x1020) && b.pw.termination == PwTermination::TakenBranch {
            assert!(b.pw.ends_in_taken_branch);
            assert!(b.pw.end.get() < 0x1040, "ends before the line boundary");
            saw = true;
        }
    }
    assert!(saw, "never saw the Figure 2(c) window");
}

/// Figure 7: baseline termination at the I-cache boundary splits
/// sequential code into entries mapped to *different* (consecutive) sets.
#[test]
fn fig7_baseline_split_maps_to_consecutive_sets() {
    let cfg = UopCacheConfig::baseline_2k();
    let mut acc = AccumulationBuffer::new(cfg.clone());
    let oc = UopCache::new(cfg);
    let mut entries = Vec::new();
    // 4-byte insts crossing a line boundary at 0x1040.
    for i in 0..20u64 {
        entries.extend(acc.push(&alu(0x1030 + i * 4, 4), PwId(0), false));
    }
    entries.extend(acc.flush());
    assert!(entries.len() >= 2);
    assert_eq!(entries[0].term, EntryTermination::IcacheBoundary);
    let set0 = oc.set_index_of(entries[0].start);
    let set1 = oc.set_index_of(entries[1].start);
    assert_eq!(
        (set0 + 1) % 32,
        set1,
        "split entries land in consecutive sets"
    );
}

/// Figure 8: with CLASP the same sequential code forms one entry spanning
/// the boundary, resident in a single set.
#[test]
fn fig8_clasp_merges_across_boundary() {
    let cfg = UopCacheConfig::baseline_2k().with_clasp();
    let mut acc = AccumulationBuffer::new(cfg.clone());
    let mut oc = UopCache::new(cfg);
    let mut entries = Vec::new();
    for i in 0..20u64 {
        entries.extend(acc.push(&alu(0x1030 + i * 4, 4), PwId(0), false));
    }
    entries.extend(acc.flush());
    let first = &entries[0];
    assert!(first.spans_boundary(), "CLASP entry crosses the boundary");
    assert_ne!(first.term, EntryTermination::IcacheBoundary);
    oc.fill(*first);
    // Dispatched in one lookup from the set of its *start* address.
    assert!(oc.lookup(Addr::new(0x1030)).is_some());
}

/// Figure 10: two small entries share one physical line after compaction.
#[test]
fn fig10_compaction_shares_a_line() {
    let mut oc =
        UopCache::new(UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Rac, 2));
    oc.fill(entry(0x1000, 4, 1)); // 28 B
    let out = oc.fill(entry(0x1010, 4, 2)); // 28 B → fits (56 ≤ 62)
    assert_eq!(out.placement, PlacementKind::Rac);
    assert_eq!(oc.valid_lines(), 1, "both entries in one line");
    assert_eq!(oc.compacted_lines(), 1);
}

/// Figure 13: PWAC prefers the line holding an entry of the same PW over
/// the PW-agnostic (RAC/MRU) choice.
#[test]
fn fig13_pwac_unites_same_pw() {
    let mut oc =
        UopCache::new(UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Pwac, 2));
    // PW-A's entry and PW-B's first entry, in separate lines (too big to
    // pair with each other).
    oc.fill(entry(0x1000, 6, 100)); // PW-A, 42 B
    oc.fill(entry(0x1010, 6, 200)); // PW-B1, 42 B
                                    // Touch PW-A's line so RAC would pick it (MRU).
    oc.lookup(Addr::new(0x1000));
    // PW-B2 (small) must still join PW-B1.
    let out = oc.fill(entry(0x1020, 2, 200));
    assert_eq!(out.placement, PlacementKind::Pwac);
}

/// Figure 14: F-PWAC forcibly reunites a PW whose first entry was
/// compacted with a foreign entry, moving the foreigner to the LRU line.
#[test]
fn fig14_fpwac_forced_move() {
    let mut oc =
        UopCache::new(UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 2));
    oc.fill(entry(0x1000, 4, 100)); // PW-A
    oc.fill(entry(0x1010, 4, 200)); // PW-B1: compacted with PW-A (t0)
    assert_eq!(oc.valid_lines(), 1);
    let out = oc.fill(entry(0x1020, 4, 200)); // PW-B2 (t1): no room
    assert_eq!(out.placement, PlacementKind::Fpwac);
    // All three survive; B1+B2 share a line, A was rewritten elsewhere.
    assert!(oc.probe(Addr::new(0x1000)));
    assert!(oc.probe(Addr::new(0x1010)));
    assert!(oc.probe(Addr::new(0x1020)));
    assert_eq!(oc.valid_lines(), 2);
    assert_eq!(oc.stats().forced_moves, 1);
}

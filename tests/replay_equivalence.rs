//! Record-once/replay-many equivalence: replaying one recorded trace
//! through every cell of a sweep must produce reports byte-identical (as
//! canonical JSON) to regenerating the instruction stream per cell.
//!
//! This is the contract the sweep runners (bench matrix, serve
//! `/v1/matrix`) rely on to share a single recording across a capacity ×
//! policy cross; the served-vs-direct byte equality of `/v1/sim` and
//! `/v1/matrix` responses is covered separately in `serve_integration.rs`.

use ucsim_model::ToJson;
use ucsim_pipeline::{run_configs_on_trace, LabeledConfig, PwTrace, SimConfig, Simulator};
use ucsim_trace::{record_workload, Program, WorkloadProfile};

const WORKLOADS: [&str; 3] = ["nutch", "bm-pb", "redis"];

fn policies(warmup: u64, measure: u64) -> Vec<LabeledConfig> {
    let base = SimConfig::table1().with_insts(warmup, measure);
    let mut clasp = base.clone();
    clasp.uop_cache.clasp = true;
    vec![
        LabeledConfig::new("baseline", base),
        LabeledConfig::new("CLASP", clasp),
    ]
}

#[test]
fn replayed_sweep_cells_match_per_cell_regeneration_byte_for_byte() {
    let (warmup, measure) = (2_000u64, 12_000u64);
    let configs = policies(warmup, measure);
    for w in WORKLOADS {
        let profile = WorkloadProfile::by_name(w).expect("known workload");
        let program = Program::generate(&profile);

        // Per-cell regeneration: fresh walk for every configuration.
        let regenerated: Vec<String> = configs
            .iter()
            .map(|lc| {
                Simulator::new(lc.config.clone())
                    .run(&profile, &program)
                    .to_json_string()
            })
            .collect();

        // Record once, replay through every configuration.
        let trace = record_workload(&profile, &program, warmup + measure);
        let replayed: Vec<String> = run_configs_on_trace(profile.name, &trace, &configs)
            .into_iter()
            .map(|r| r.to_json_string())
            .collect();

        assert_eq!(
            regenerated, replayed,
            "workload {w}: replayed reports diverged from regeneration"
        );
    }
}

#[test]
fn run_trace_alone_matches_run_for_every_workload_and_policy() {
    let (warmup, measure) = (1_000u64, 8_000u64);
    for w in WORKLOADS {
        let profile = WorkloadProfile::by_name(w).expect("known workload");
        let program = Program::generate(&profile);
        let trace = record_workload(&profile, &program, warmup + measure);
        for lc in policies(warmup, measure) {
            let sim = Simulator::new(lc.config.clone());
            let direct = sim.run(&profile, &program).to_json_string();
            let replayed = sim.run_trace(profile.name, &trace).to_json_string();
            assert_eq!(direct, replayed, "workload {w}, policy {}", lc.label);
        }
    }
}

#[test]
fn pw_trace_replay_matches_full_runs_across_policies() {
    let (warmup, measure) = (1_000u64, 8_000u64);
    let configs = policies(warmup, measure);
    let profile = WorkloadProfile::quick_test();
    let program = Program::generate(&profile);
    let trace = record_workload(&profile, &program, warmup + measure);
    let pwt = PwTrace::record(&trace, &configs[0].config);
    for lc in &configs {
        assert!(pwt.matches(&lc.config), "sweep cells share the front end");
        let direct = Simulator::new(lc.config.clone())
            .run(&profile, &program)
            .to_json_string();
        assert_eq!(
            pwt.replay(profile.name, &lc.config).to_json_string(),
            direct,
            "policy {}",
            lc.label
        );
    }
}

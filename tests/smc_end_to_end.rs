//! End-to-end self-modifying-code behaviour: a workload whose stores
//! occasionally patch code must trigger uop cache invalidation probes,
//! and the uop cache must never serve stale entries for patched lines.

use ucsim::pipeline::{SimConfig, Simulator};
use ucsim::trace::{Program, WorkloadProfile};

fn jitty_profile() -> WorkloadProfile {
    let mut p = WorkloadProfile::quick_test();
    p.p_smc_store = 0.02; // exaggerated JIT patch rate for the test
    p
}

#[test]
fn smc_stores_trigger_probes() {
    let profile = jitty_profile();
    let program = Program::generate(&profile);
    let cfg = SimConfig::table1().with_insts(5_000, 60_000);
    let r = Simulator::new(cfg).run(&profile, &program);
    assert!(r.smc_probes > 0, "JIT workload must emit code writes");
    assert!(
        r.smc_invalidated_entries > 0,
        "probes must occasionally hit resident entries"
    );
}

#[test]
fn smc_rate_zero_means_no_probes() {
    let profile = WorkloadProfile::quick_test();
    assert_eq!(profile.p_smc_store, 0.0);
    let program = Program::generate(&profile);
    let cfg = SimConfig::table1().with_insts(5_000, 40_000);
    let r = Simulator::new(cfg).run(&profile, &program);
    assert_eq!(r.smc_probes, 0);
    assert_eq!(r.smc_invalidated_entries, 0);
}

#[test]
fn smc_behaviour_is_deterministic() {
    let profile = jitty_profile();
    let program = Program::generate(&profile);
    let cfg = SimConfig::table1().with_insts(5_000, 40_000);
    let a = Simulator::new(cfg.clone()).run(&profile, &program);
    let b = Simulator::new(cfg).run(&profile, &program);
    assert_eq!(a.smc_probes, b.smc_probes);
    assert_eq!(a.smc_invalidated_entries, b.smc_invalidated_entries);
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn smc_works_under_clasp_and_compaction() {
    use ucsim::uopcache::{CompactionPolicy, UopCacheConfig};
    let profile = jitty_profile();
    let program = Program::generate(&profile);
    for oc in [
        UopCacheConfig::baseline_2k().with_clasp(),
        UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 2),
    ] {
        let cfg = SimConfig::table1()
            .with_uop_cache(oc)
            .with_insts(5_000, 60_000);
        let r = Simulator::new(cfg).run(&profile, &program);
        assert!(r.smc_probes > 0);
        // The run completes with sane metrics despite invalidation churn.
        assert!(r.upc > 0.2);
        assert!((0.0..=1.0).contains(&r.oc_fetch_ratio));
    }
}

//! Wire-contract tests: `SimConfig` and `SimReport` are the job
//! service's request/response payloads, so they must survive
//! encode → decode → encode **bit-exactly** — f64 fields included.

use ucsim::model::{FromJson, Json, ToJson};
use ucsim::pipeline::{SimConfig, Simulator};
use ucsim::trace::{Program, WorkloadProfile};
use ucsim::uopcache::{CompactionPolicy, UopCacheConfig};

/// Asserts `value` encodes, decodes, and re-encodes to identical text,
/// and that the decoded JSON tree matches the original's.
fn assert_bit_exact_roundtrip<T: ToJson + FromJson>(value: &T, what: &str) {
    let text = value.to_json_string();
    let back = T::from_json_str(&text).unwrap_or_else(|e| panic!("{what}: decode failed at {e}"));
    let text2 = back.to_json_string();
    assert_eq!(text, text2, "{what}: re-encode differs from first encode");
    // The parsed trees agree too (catches writer/parser asymmetries).
    assert_eq!(
        Json::parse(&text).unwrap(),
        Json::parse(&text2).unwrap(),
        "{what}: parsed trees differ"
    );
}

#[test]
fn sim_config_table1_round_trips() {
    assert_bit_exact_roundtrip(&SimConfig::table1(), "SimConfig::table1()");
}

#[test]
fn sim_config_variants_round_trip() {
    let clasp = SimConfig::table1()
        .with_uop_cache(UopCacheConfig::baseline_2k().with_clasp())
        .with_insts(123, 456_789);
    assert_bit_exact_roundtrip(&clasp, "SimConfig + CLASP");

    let fpwac = SimConfig::table1().with_uop_cache(
        UopCacheConfig::baseline_with_capacity(8192).with_compaction(CompactionPolicy::Fpwac, 3),
    );
    assert_bit_exact_roundtrip(&fpwac, "SimConfig + F-PWAC");
}

#[test]
fn sim_report_round_trips_bit_exactly() {
    // A real report, full of f64 metrics that must not drift on the wire.
    let profile = WorkloadProfile::quick_test();
    let program = Program::generate(&profile);
    let report = Simulator::new(SimConfig::table1().quick()).run(&profile, &program);
    assert!(report.upc > 0.0, "sanity: the simulation ran");
    assert_bit_exact_roundtrip(&report, "SimReport");
}

#[test]
fn sim_report_f64_fields_survive_exactly() {
    let profile = WorkloadProfile::quick_test();
    let program = Program::generate(&profile);
    let report = Simulator::new(SimConfig::table1().quick()).run(&profile, &program);

    let text = report.to_json_string();
    let back = ucsim::pipeline::SimReport::from_json_str(&text).unwrap();
    // Bit-for-bit equality, not approximate: the cache hands the same
    // bytes to every client, so decoded values must be the same floats.
    assert_eq!(report.upc.to_bits(), back.upc.to_bits());
    assert_eq!(report.oc_hit_rate.to_bits(), back.oc_hit_rate.to_bits());
    assert_eq!(report.mpki.to_bits(), back.mpki.to_bits());
    assert_eq!(report.decoder_power.to_bits(), back.decoder_power.to_bits());
    assert_eq!(
        report.front_end_power.to_bits(),
        back.front_end_power.to_bits()
    );
}

#[test]
fn workload_ref_spellings_share_one_content_address() {
    // API v1.2 pin: the tagged workload object and its deprecated string
    // alias must resolve to byte-identical canonical job specs — and a
    // plain profile name must canonicalize exactly as it did pre-v1.2,
    // so no existing store record or cache key is orphaned.
    use ucsim::serve::SimRequest;

    let tagged =
        SimRequest::parse(r#"{"workload":{"program":"00000000deadbeef"},"seed":7,"insts":1000}"#)
            .unwrap();
    let alias =
        SimRequest::parse(r#"{"workload":"program:00000000deadbeef","seed":7,"insts":1000}"#)
            .unwrap();
    assert_eq!(
        tagged.resolve(0).canonical(),
        alias.resolve(0).canonical(),
        "tagged object and string alias must hash identically"
    );

    let profile = SimRequest::parse(r#"{"workload":{"profile":"bm-cc"},"seed":7,"insts":1000}"#)
        .unwrap()
        .resolve(0);
    let bare = SimRequest::parse(r#"{"workload":"bm-cc","seed":7,"insts":1000}"#)
        .unwrap()
        .resolve(0);
    assert_eq!(profile.canonical(), bare.canonical());
    assert_eq!(profile.workload, "bm-cc", "profile names stay unprefixed");
}

#[test]
fn config_survives_json_value_detour() {
    // Encode → parse to a Json tree → re-encode → decode: the detour a
    // request body takes through the server.
    let cfg = SimConfig::table1().quick();
    let tree = cfg.to_json();
    let text = tree.to_string();
    let back = SimConfig::from_json_str(&text).unwrap();
    assert_eq!(back.to_json_string(), cfg.to_json_string());
}

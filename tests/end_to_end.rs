//! End-to-end invariants of the full simulator across workloads and uop
//! cache configurations.

use ucsim::pipeline::{SimConfig, SimReport, Simulator};
use ucsim::trace::{Program, WorkloadProfile};
use ucsim::uopcache::{CompactionPolicy, UopCacheConfig};

fn run(profile: &WorkloadProfile, oc: UopCacheConfig) -> SimReport {
    let program = Program::generate(profile);
    let cfg = SimConfig::table1()
        .with_uop_cache(oc)
        .with_insts(10_000, 80_000);
    Simulator::new(cfg).run(profile, &program)
}

fn pressured() -> WorkloadProfile {
    WorkloadProfile::by_name("bm-lla").expect("table2")
}

#[test]
fn uop_conservation() {
    // Every committed uop came from exactly one supply path.
    let r = run(&pressured(), UopCacheConfig::baseline_2k());
    assert_eq!(r.oc_uops + r.decoder_uops + r.loop_uops, r.uops);
}

#[test]
fn rates_are_rates() {
    for oc in [
        UopCacheConfig::baseline_2k(),
        UopCacheConfig::baseline_2k().with_clasp(),
        UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 2),
    ] {
        let r = run(&pressured(), oc);
        assert!((0.0..=1.0).contains(&r.oc_fetch_ratio));
        assert!((0.0..=1.0).contains(&r.oc_hit_rate));
        assert!((0.0..=1.0).contains(&r.taken_term_frac));
        assert!((0.0..=1.0).contains(&r.spanning_frac));
        assert!((0.0..=1.0).contains(&r.compacted_fill_frac));
        let sum: f64 = r.entries_per_pw.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6 || sum == 0.0);
        assert!(r.upc > 0.0 && r.upc <= 8.0);
    }
}

#[test]
fn determinism_across_identical_runs() {
    let a = run(&pressured(), UopCacheConfig::baseline_2k());
    let b = run(&pressured(), UopCacheConfig::baseline_2k());
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.uops, b.uops);
    assert_eq!(a.oc_uops, b.oc_uops);
    assert_eq!(a.oc_fills, b.oc_fills);
    assert_eq!(a.mispredicts, b.mispredicts);
    assert_eq!(a.decoded_insts, b.decoded_insts);
}

#[test]
fn trace_is_identical_across_configurations() {
    // The front-end configuration must not leak into the trace: the same
    // instruction count and branch behaviour feed every design.
    let a = run(&pressured(), UopCacheConfig::baseline_2k());
    let b = run(&pressured(), UopCacheConfig::baseline_with_capacity(65536));
    assert_eq!(a.insts, b.insts);
    assert_eq!(a.uops, b.uops);
    assert_eq!(a.mpki, b.mpki, "branch predictor sees the same stream");
}

#[test]
fn capacity_improves_fetch_ratio_and_power() {
    let small = run(&pressured(), UopCacheConfig::baseline_2k());
    let big = run(&pressured(), UopCacheConfig::baseline_with_capacity(65536));
    assert!(big.oc_fetch_ratio > small.oc_fetch_ratio);
    assert!(big.decoder_power < small.decoder_power);
    assert!(big.upc >= small.upc * 0.999);
    assert!(big.decoded_insts < small.decoded_insts);
}

#[test]
fn clasp_produces_spanning_entries_only_when_enabled() {
    let base = run(&pressured(), UopCacheConfig::baseline_2k());
    let clasp = run(&pressured(), UopCacheConfig::baseline_2k().with_clasp());
    assert_eq!(base.spanning_frac, 0.0);
    assert!(clasp.spanning_frac > 0.05, "{}", clasp.spanning_frac);
}

#[test]
fn compaction_improves_fetch_ratio_over_clasp() {
    let clasp = run(&pressured(), UopCacheConfig::baseline_2k().with_clasp());
    let fpwac = run(
        &pressured(),
        UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 2),
    );
    assert!(fpwac.compacted_fill_frac > 0.0);
    assert!(
        fpwac.oc_fetch_ratio >= clasp.oc_fetch_ratio,
        "fpwac {} < clasp {}",
        fpwac.oc_fetch_ratio,
        clasp.oc_fetch_ratio
    );
    assert!(fpwac.decoder_power <= clasp.decoder_power * 1.001);
}

#[test]
fn optimization_ladder_ordering_holds_on_upc() {
    // The paper's headline ordering: F-PWAC >= RAC >= baseline (allowing
    // tiny noise between adjacent schemes).
    let base = run(&pressured(), UopCacheConfig::baseline_2k());
    let rac = run(
        &pressured(),
        UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Rac, 2),
    );
    let fpwac = run(
        &pressured(),
        UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 2),
    );
    assert!(rac.upc >= base.upc, "rac {} < base {}", rac.upc, base.upc);
    assert!(
        fpwac.upc >= rac.upc * 0.995,
        "fpwac {} well below rac {}",
        fpwac.upc,
        rac.upc
    );
}

#[test]
fn three_entries_per_line_at_least_as_good() {
    let two = run(
        &pressured(),
        UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 2),
    );
    let three = run(
        &pressured(),
        UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 3),
    );
    assert!(
        three.compacted_fill_frac >= two.compacted_fill_frac * 0.98,
        "three {} vs two {}",
        three.compacted_fill_frac,
        two.compacted_fill_frac
    );
    assert!(three.oc_fetch_ratio >= two.oc_fetch_ratio * 0.99);
}

#[test]
fn mpki_tracks_profile_ordering() {
    // Workloads the paper ranks as branchy must out-MPKI the tame ones.
    let hard = run(
        &WorkloadProfile::by_name("bm-lla").unwrap(),
        UopCacheConfig::baseline_2k(),
    );
    let easy = run(
        &WorkloadProfile::by_name("redis").unwrap(),
        UopCacheConfig::baseline_2k(),
    );
    assert!(
        hard.mpki > 2.0 * easy.mpki,
        "leela {} vs redis {}",
        hard.mpki,
        easy.mpki
    );
}

#[test]
fn all_table2_workloads_run() {
    for profile in WorkloadProfile::table2() {
        let program = Program::generate(&profile);
        let cfg = SimConfig::table1().with_insts(2_000, 15_000);
        let r = Simulator::new(cfg).run(&profile, &program);
        assert!(r.upc > 0.2, "{}: UPC {}", profile.name, r.upc);
        assert!(r.uops >= r.insts, "{}", profile.name);
        assert!(r.mpki < 40.0, "{}: mpki {}", profile.name, r.mpki);
    }
}

#[test]
fn recorded_trace_replays_identically() {
    // The paper's methodology: trace-driven simulation. Replaying a
    // recorded trace must produce bit-identical metrics to the live walk.
    use ucsim::trace::Trace;
    let profile = pressured();
    let program = Program::generate(&profile);
    let cfg = SimConfig::table1().with_insts(5_000, 40_000);
    let live = Simulator::new(cfg.clone()).run(&profile, &program);
    let trace = Trace::record(program.walk(&profile).take(45_000));
    let replay = Simulator::new(cfg).run_stream(profile.name, trace.iter());
    assert_eq!(live.cycles, replay.cycles);
    assert_eq!(live.uops, replay.uops);
    assert_eq!(live.oc_uops, replay.oc_uops);
    assert_eq!(live.mispredicts, replay.mispredicts);
}

//! End-to-end tests of sweep *plans*: the fair-share scheduler under
//! mixed tenants, store-aware resume (re-submitting a completed sweep
//! simulates nothing), adaptive capacity refinement vs the full grid,
//! overcommitted sweeps on the unbounded plan path, and the uniform
//! cancellation endpoints of the v1.1 contract.

use std::time::{Duration, Instant};

use ucsim::model::Json;
use ucsim::serve::{request, Server, ServerConfig};

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_capacity: 8,
        cache_budget_bytes: 8 * 1024 * 1024,
        retry_after_secs: 2,
        retain_jobs: 256,
        enable_test_workloads: true,
        ..ServerConfig::default()
    }
}

fn parse_json(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("bad JSON from server: {e}\n{body}"))
}

fn envelope_code(body: &str) -> String {
    parse_json(body)
        .get("error")
        .unwrap_or_else(|| panic!("no envelope in {body}"))
        .get("code")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned()
}

fn post_matrix(addr: &str, body: &str) -> u64 {
    let r = request(addr, "POST", "/v1/matrix", body.as_bytes()).unwrap();
    assert_eq!(r.status, 202, "body: {}", r.body_str());
    parse_json(&r.body_str())
        .get("id")
        .unwrap()
        .as_u64()
        .unwrap()
}

/// Polls `GET /v1/matrix/:id` until the plan settles, returning the doc.
fn poll_settled(addr: &str, id: u64) -> Json {
    let path = format!("/v1/matrix/{id}");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let r = request(addr, "GET", &path, b"").unwrap();
        assert_eq!(r.status, 200, "body: {}", r.body_str());
        let v = parse_json(&r.body_str());
        if v.get("state").unwrap().as_str() != Some("running") {
            return v;
        }
        assert!(Instant::now() < deadline, "plan never settled");
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// A matrix body of `n` distinct `test-sleep` workloads starting at
/// `base` milliseconds — one cell each, every cell a distinct content
/// address, roughly uniform runtime.
fn sleep_sweep_body(base: u64, n: u64, tenant: &str) -> String {
    let workloads: Vec<String> = (base..base + n)
        .map(|ms| format!("\"test-sleep:{ms}\""))
        .collect();
    format!(
        r#"{{"workloads":[{}],"capacities":[2048],"policies":["baseline"],"seed":1,"warmup":100,"insts":1000,"tenant":"{tenant}"}}"#,
        workloads.join(",")
    )
}

/// The fairness acceptance test: two tenants share one worker at 1:4
/// weights; when the heavy tenant's plan completes, the light tenant has
/// completed roughly a quarter as many cells — neither starved nor
/// served FIFO.
#[test]
fn mixed_tenants_share_the_worker_by_weight() {
    let server = Server::start(ServerConfig {
        workers: 1,
        tenant_weights: vec![("alpha".to_owned(), 1), ("beta".to_owned(), 4)],
        ..test_config()
    })
    .unwrap();
    let addr = server.local_addr().to_string();

    // Park the single worker on a blocker job so both plans are fully
    // enqueued before any cell is served.
    let r = request(
        &addr,
        "POST",
        "/v1/sim",
        br#"{"workload":"test-sleep:400","warmup":100,"insts":1000,"background":true}"#,
    )
    .unwrap();
    assert_eq!(r.status, 202, "body: {}", r.body_str());
    std::thread::sleep(Duration::from_millis(150));

    let a_id = post_matrix(&addr, &sleep_sweep_body(11, 12, "alpha"));
    let b_id = post_matrix(&addr, &sleep_sweep_body(31, 12, "beta"));

    // Wait the heavy tenant out, then read the light tenant's progress.
    let b_doc = poll_settled(&addr, b_id);
    assert_eq!(b_doc.get("state").unwrap().as_str(), Some("done"));
    let r = request(&addr, "GET", &format!("/v1/matrix/{a_id}"), b"").unwrap();
    let a_done = parse_json(&r.body_str())
        .get("done")
        .unwrap()
        .as_u64()
        .unwrap();
    // Deficit fair share at 1:4 serves ~1 alpha cell per 4 beta cells, so
    // alpha sits near 12/4 = 3 when beta finishes. A wide band keeps the
    // test robust to scheduling jitter while still rejecting both FIFO
    // (alpha would be 12 or 0) and round-robin (alpha would be ~12).
    assert!(
        (1..=6).contains(&a_done),
        "alpha finished {a_done}/12 cells when beta completed; expected ~3 under 1:4 weights"
    );

    // The starved-side guarantee: alpha still finishes.
    let a_doc = poll_settled(&addr, a_id);
    assert_eq!(a_doc.get("state").unwrap().as_str(), Some("done"));
    assert_eq!(a_doc.get("failed").unwrap().as_u64(), Some(0));

    // The scheduler section of /v1/metrics accounted the traffic.
    let m = parse_json(
        &request(&addr, "GET", "/v1/metrics", b"")
            .unwrap()
            .body_str(),
    );
    let sched = m.get("scheduler").unwrap();
    assert!(sched.get("served").unwrap().as_u64().unwrap() >= 25);
    assert!(sched.get("tenants_active").unwrap().as_u64().unwrap() >= 3);

    server.shutdown();
}

/// A sweep 10× over the bounded queue capacity neither 429s nor
/// deadlocks: plan cells ride the scheduler's unbounded path, so the POST
/// is a prompt 202 and every cell eventually simulates.
#[test]
fn overcommitted_sweep_never_rejects_or_deadlocks() {
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_capacity: 4,
        ..test_config()
    })
    .unwrap();
    let addr = server.local_addr().to_string();

    // 10 workloads × 2 capacities × 2 policies = 40 cells against a
    // 4-deep bounded queue: 10× overcommitted.
    let workloads: Vec<String> = (1..=10).map(|ms| format!("\"test-sleep:{ms}\"")).collect();
    let body = format!(
        r#"{{"workloads":[{}],"capacities":[2048,4096],"policies":["baseline","clasp"],"seed":1,"warmup":100,"insts":1000}}"#,
        workloads.join(",")
    );
    let t0 = Instant::now();
    let r = request(&addr, "POST", "/v1/matrix", body.as_bytes()).unwrap();
    assert_eq!(r.status, 202, "body: {}", r.body_str());
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "matrix POST must not block on queue capacity"
    );
    let accepted = parse_json(&r.body_str());
    assert_eq!(accepted.get("planned").unwrap().as_u64(), Some(40));
    let id = accepted.get("id").unwrap().as_u64().unwrap();

    let doc = poll_settled(&addr, id);
    assert_eq!(doc.get("state").unwrap().as_str(), Some("done"));
    assert_eq!(doc.get("done").unwrap().as_u64(), Some(40));
    assert_eq!(doc.get("failed").unwrap().as_u64(), Some(0));
    assert_eq!(server.simulations_executed(), 40);

    // Nothing was bounced: the 429 path is for direct jobs only.
    let m = parse_json(
        &request(&addr, "GET", "/v1/metrics", b"")
            .unwrap()
            .body_str(),
    );
    assert_eq!(
        m.get("queue")
            .unwrap()
            .get("rejected_429")
            .unwrap()
            .as_u64(),
        Some(0)
    );
    server.shutdown();
}

/// Store-aware resume on a live server: re-submitting a completed sweep
/// plans the same cells but simulates none — every cell resolves from
/// the result cache (`skipped_from_store == planned`).
#[test]
fn resubmitted_sweep_resolves_every_cell_from_the_store() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr().to_string();
    let body = r#"{"workloads":["bm-cc"],"capacities":[2048],"policies":["baseline","clasp"],"seed":7,"warmup":1000,"insts":20000}"#;

    let first = post_matrix(&addr, body);
    let doc = poll_settled(&addr, first);
    assert_eq!(doc.get("state").unwrap().as_str(), Some("done"));
    assert_eq!(doc.get("planned").unwrap().as_u64(), Some(2));
    assert_eq!(doc.get("skipped_from_store").unwrap().as_u64(), Some(0));
    assert_eq!(doc.get("simulated").unwrap().as_u64(), Some(2));
    assert_eq!(server.simulations_executed(), 2);

    // Same plan again: planned == skipped, zero simulations.
    let second = post_matrix(&addr, body);
    let doc2 = poll_settled(&addr, second);
    assert_eq!(doc2.get("state").unwrap().as_str(), Some("done"));
    assert_eq!(doc2.get("planned").unwrap().as_u64(), Some(2));
    assert_eq!(doc2.get("skipped_from_store").unwrap().as_u64(), Some(2));
    assert_eq!(doc2.get("simulated").unwrap().as_u64(), Some(0));
    assert_eq!(server.simulations_executed(), 2, "resume re-ran a cell");
    assert_eq!(
        doc2.get("report").unwrap().to_string(),
        doc.get("report").unwrap().to_string(),
        "store-resolved aggregate must be byte-identical"
    );

    // v1.1 envelope-shape regression: the v1.0 aliases are gone for good.
    for d in [&doc, &doc2] {
        assert!(d.get("status").is_none(), "status alias removed in v1.1");
        assert!(d.get("sweep").is_none(), "sweep alias removed in v1.1");
    }

    // The listing endpoint sees both plans, and the state filter works.
    let r = request(&addr, "GET", "/v1/matrix", b"").unwrap();
    let listed = parse_json(&r.body_str());
    let sweeps = listed.get("sweeps").unwrap().as_arr().unwrap();
    assert_eq!(sweeps.len(), 2);
    for s in sweeps {
        assert_eq!(s.get("state").unwrap().as_str(), Some("done"));
        assert_eq!(s.get("mode").unwrap().as_str(), Some("full"));
    }
    let r = request(&addr, "GET", "/v1/matrix?state=running", b"").unwrap();
    assert!(parse_json(&r.body_str())
        .get("sweeps")
        .unwrap()
        .as_arr()
        .unwrap()
        .is_empty());
    server.shutdown();
}

/// The adaptive acceptance test: refining a 12-point capacity axis
/// brackets the same UPC knee the full grid finds, while simulating at
/// most half of the full cross — and every cell it does simulate is
/// byte-identical to a direct `Simulator` run.
#[test]
fn adaptive_plan_brackets_the_full_grid_knee_at_half_the_cost() {
    use ucsim::model::ToJson;
    use ucsim::pipeline::{KneeBisector, Simulator};
    use ucsim::trace::{Program, WorkloadProfile};
    use ucsim_bench::{MatrixCross, SweepPolicy};

    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr().to_string();
    // 64..=128K uops: small capacities genuinely thrash on redis, so the
    // UPC curve rises and the knee lands at an interior axis point.
    let caps: Vec<u64> = (0..12).map(|k| 64u64 << k).collect();
    let caps_json = caps
        .iter()
        .map(u64::to_string)
        .collect::<Vec<_>>()
        .join(",");

    // Phase 1 — adaptive, on a cold server: only the probed waves exist.
    let adaptive_body = format!(
        r#"{{"workloads":["redis"],"capacities":[{caps_json}],"policies":["baseline"],"seed":7,"warmup":1000,"insts":20000,"mode":{{"adaptive":{{"axis":"capacity"}}}}}}"#
    );
    let id = post_matrix(&addr, &adaptive_body);
    let doc = poll_settled(&addr, id);
    assert_eq!(doc.get("state").unwrap().as_str(), Some("done"));
    assert_eq!(doc.get("mode").unwrap().as_str(), Some("adaptive"));
    let probed = doc.get("planned").unwrap().as_u64().unwrap();
    assert_eq!(doc.get("simulated").unwrap().as_u64(), Some(probed));
    assert!(
        probed * 2 <= caps.len() as u64,
        "adaptive simulated {probed} of {} cells; must be at most half",
        caps.len()
    );
    let frontier = doc
        .get("frontier")
        .expect("adaptive plans report a frontier");
    assert_eq!(frontier.get("axis").unwrap().as_str(), Some("capacity"));
    let adaptive_knee = frontier
        .get("knee")
        .unwrap_or_else(|| panic!("converged frontier carries the knee: {doc}"))
        .as_u64()
        .unwrap();
    match frontier.get("bracket") {
        Some(bracket) => {
            let bracket = bracket.as_arr().unwrap();
            assert_eq!(bracket[1].as_u64(), Some(adaptive_knee));
        }
        // The bisector omits the bracket only when the curve is flat
        // enough that the first axis point already meets the tolerance.
        None => assert_eq!(adaptive_knee, caps[0]),
    }

    // Phase 2 — the full grid on the same server. The probed cells
    // resolve from the store (shared content addresses), only the rest
    // simulate.
    let full_body = format!(
        r#"{{"workloads":["redis"],"capacities":[{caps_json}],"policies":["baseline"],"seed":7,"warmup":1000,"insts":20000}}"#
    );
    let full_id = post_matrix(&addr, &full_body);
    let full_doc = poll_settled(&addr, full_id);
    assert_eq!(full_doc.get("state").unwrap().as_str(), Some("done"));
    assert_eq!(full_doc.get("planned").unwrap().as_u64(), Some(12));
    assert_eq!(
        full_doc.get("skipped_from_store").unwrap().as_u64(),
        Some(probed)
    );
    assert_eq!(
        full_doc.get("simulated").unwrap().as_u64(),
        Some(12 - probed)
    );
    assert_eq!(server.simulations_executed(), 12);

    // The full-grid knee (the offline definition: smallest capacity whose
    // UPC reaches within tolerance of the axis maximum) must be the
    // capacity the bisector bracketed.
    let full_cells = full_doc
        .get("report")
        .unwrap()
        .get("cells")
        .unwrap()
        .as_arr()
        .unwrap();
    assert_eq!(full_cells.len(), 12);
    let upcs: Vec<f64> = full_cells
        .iter()
        .map(|c| {
            c.get("report")
                .unwrap()
                .get("upc")
                .unwrap()
                .as_f64()
                .unwrap()
        })
        .collect();
    let knee_idx = KneeBisector::linear_knee(&upcs, 0.05).expect("non-empty axis");
    assert_eq!(
        caps[knee_idx], adaptive_knee,
        "adaptive knee diverges from the full grid (UPCs: {upcs:?})"
    );

    // Byte-identity: every cell the adaptive plan simulated matches a
    // direct Simulator run over the same expanded config.
    let cross = MatrixCross {
        capacities: caps.iter().map(|&c| c as usize).collect(),
        policies: vec![SweepPolicy::Baseline],
        max_entries: 2,
    };
    let configs = cross.expand();
    let mut profile = WorkloadProfile::by_name("redis").unwrap();
    profile.seed = 7;
    let program = Program::generate(&profile);
    let adaptive_cells = doc
        .get("report")
        .unwrap()
        .get("cells")
        .unwrap()
        .as_arr()
        .unwrap();
    assert_eq!(adaptive_cells.len() as u64, probed);
    for cell in adaptive_cells {
        let label = cell.get("label").unwrap().as_str().unwrap();
        let lc = configs
            .iter()
            .find(|lc| lc.label == label)
            .unwrap_or_else(|| panic!("label {label} missing from the cross"));
        let mut cfg = lc.config.clone();
        cfg.warmup_insts = 1000;
        cfg.measure_insts = 20000;
        let expected = Simulator::new(cfg).run(&profile, &program).to_json_string();
        assert_eq!(
            cell.get("report").unwrap().to_string(),
            expected,
            "adaptive cell {label} diverges from the direct run"
        );
    }
    server.shutdown();
}

/// Uniform cancellation: `DELETE /v1/matrix/:id` preempts queued plan
/// cells with the stable `cancelled` code; a second DELETE and a DELETE
/// of a settled or unknown target answer honestly.
#[test]
fn cancelling_a_sweep_preempts_its_queued_cells() {
    let server = Server::start(ServerConfig {
        workers: 1,
        ..test_config()
    })
    .unwrap();
    let addr = server.local_addr().to_string();

    // Park the worker so every plan cell is still queued at DELETE time.
    let r = request(
        &addr,
        "POST",
        "/v1/sim",
        br#"{"workload":"test-sleep:500","warmup":100,"insts":1000,"background":true}"#,
    )
    .unwrap();
    assert_eq!(r.status, 202, "body: {}", r.body_str());
    std::thread::sleep(Duration::from_millis(150));

    let id = post_matrix(&addr, &sleep_sweep_body(51, 4, "default"));
    let r = request(&addr, "DELETE", &format!("/v1/matrix/{id}"), b"").unwrap();
    assert_eq!(r.status, 409, "body: {}", r.body_str());
    assert_eq!(envelope_code(&r.body_str()), "cancelled");

    let doc = poll_settled(&addr, id);
    assert_eq!(doc.get("state").unwrap().as_str(), Some("failed"));
    for cell in doc.get("cells").unwrap().as_arr().unwrap() {
        assert_eq!(cell.get("state").unwrap().as_str(), Some("failed"));
        assert_eq!(
            cell.get("error").unwrap().get("code").unwrap().as_str(),
            Some("cancelled")
        );
    }

    // Cancelling a settled sweep is a 400; an unknown one a 404.
    let r = request(&addr, "DELETE", &format!("/v1/matrix/{id}"), b"").unwrap();
    assert_eq!(r.status, 400);
    assert_eq!(envelope_code(&r.body_str()), "bad_request");
    let r = request(&addr, "DELETE", "/v1/matrix/999", b"").unwrap();
    assert_eq!(r.status, 404);

    // The preempted cells never reached a worker: only the blocker ran.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.simulations_executed() < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(25));
    }
    assert_eq!(server.simulations_executed(), 1);
    let m = parse_json(
        &request(&addr, "GET", "/v1/metrics", b"")
            .unwrap()
            .body_str(),
    );
    let sched = m.get("scheduler").unwrap();
    assert_eq!(sched.get("jobs_cancelled").unwrap().as_u64(), Some(4));
    server.shutdown();
}

/// `DELETE /v1/jobs/:id` mirrors the sweep endpoint for single jobs: a
/// queued job fails with the `cancelled` code and never simulates.
#[test]
fn cancelling_a_queued_job_fails_it_without_running() {
    let server = Server::start(ServerConfig {
        workers: 1,
        ..test_config()
    })
    .unwrap();
    let addr = server.local_addr().to_string();

    let r = request(
        &addr,
        "POST",
        "/v1/sim",
        br#"{"workload":"test-sleep:400","warmup":100,"insts":1000,"background":true}"#,
    )
    .unwrap();
    assert_eq!(r.status, 202, "body: {}", r.body_str());
    std::thread::sleep(Duration::from_millis(150));

    // The victim queues behind the blocker.
    let r = request(
        &addr,
        "POST",
        "/v1/sim",
        br#"{"workload":"test-sleep:401","warmup":100,"insts":1000,"background":true}"#,
    )
    .unwrap();
    assert_eq!(r.status, 202, "body: {}", r.body_str());
    let victim = parse_json(&r.body_str())
        .get("id")
        .unwrap()
        .as_u64()
        .unwrap();

    let r = request(&addr, "DELETE", &format!("/v1/jobs/{victim}"), b"").unwrap();
    assert_eq!(r.status, 409, "body: {}", r.body_str());
    assert_eq!(envelope_code(&r.body_str()), "cancelled");

    let r = request(&addr, "GET", &format!("/v1/jobs/{victim}"), b"").unwrap();
    let v = parse_json(&r.body_str());
    assert_eq!(v.get("state").unwrap().as_str(), Some("failed"));
    assert_eq!(
        v.get("error").unwrap().get("code").unwrap().as_str(),
        Some("cancelled")
    );

    // Idempotence boundaries: settled 400, unknown 404.
    let r = request(&addr, "DELETE", &format!("/v1/jobs/{victim}"), b"").unwrap();
    assert_eq!(r.status, 400);
    let r = request(&addr, "DELETE", "/v1/jobs/4242", b"").unwrap();
    assert_eq!(r.status, 404);

    // The listing endpoint sees both jobs; the filter isolates the kill.
    let r = request(&addr, "GET", "/v1/jobs?state=failed", b"").unwrap();
    let failed = parse_json(&r.body_str());
    let failed = failed.get("jobs").unwrap().as_arr().unwrap();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].get("id").unwrap().as_u64(), Some(victim));

    // Only the blocker ever simulates.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.simulations_executed() < 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(25));
    }
    assert_eq!(server.simulations_executed(), 1);
    server.shutdown();
}

//! End-to-end tests of the observability surface: the Prometheus wire
//! contract for `GET /v1/metrics`, request-ID propagation from the HTTP
//! edge through the worker pool into failure envelopes, per-job
//! execution profiles, the trace ring endpoint, and the health/version
//! introspection pair.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use ucsim::model::Json;
use ucsim::serve::{request, Client, Server, ServerConfig};

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_capacity: 8,
        cache_budget_bytes: 8 * 1024 * 1024,
        retry_after_secs: 2,
        retain_jobs: 64,
        enable_test_workloads: true,
        ..ServerConfig::default()
    }
}

fn parse_json(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("bad JSON from server: {e}\n{body}"))
}

/// One-shot request with arbitrary extra headers (the library clients
/// only set their own); reads to EOF on a `Connection: close` socket.
fn raw_request(
    addr: &str,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: {addr}\r\n");
    for (k, v) in headers {
        head.push_str(&format!("{k}: {v}\r\n"));
    }
    head.push_str(&format!(
        "content-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    ));
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let head = std::str::from_utf8(&raw[..split]).unwrap();
    let mut lines = head.split("\r\n");
    let status: u16 = lines
        .next()
        .unwrap()
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_lowercase(), v.trim().to_owned()))
        .collect();
    let body = String::from_utf8_lossy(&raw[split + 4..]).into_owned();
    (status, headers, body)
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v.as_str())
}

/// Pulls the value of a single un-labeled series out of an exposition.
fn series_value(text: &str, name: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l[name.len() + 1..].trim().parse().ok())
}

/// The Prometheus wire contract: text negotiation via `Accept`, every
/// numeric leaf of the JSON document exported as a `ucsim_*` series,
/// histogram series per endpoint label, and counters that only grow
/// between scrapes.
#[test]
fn prometheus_exposition_matches_json_and_counters_grow() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr().to_string();

    // Generate some traffic first so the counters are non-trivial.
    let r = request(
        &addr,
        "POST",
        "/v1/sim",
        br#"{"workload":"test-sleep:10","warmup":100,"insts":2000}"#,
    )
    .unwrap();
    assert_eq!(r.status, 200, "body: {}", r.body_str());

    // Default form is JSON...
    let json_resp = request(&addr, "GET", "/v1/metrics", b"").unwrap();
    assert_eq!(json_resp.header("content-type"), Some("application/json"));
    let doc = parse_json(&json_resp.body_str());

    // ...and `Accept: text/plain` switches to the exposition format.
    let (status, headers, text) = raw_request(
        &addr,
        "GET",
        "/v1/metrics",
        &[("accept", "text/plain")],
        b"",
    );
    assert_eq!(status, 200);
    assert_eq!(
        header(&headers, "content-type"),
        Some("text/plain; version=0.0.4")
    );

    // Every numeric leaf of the JSON document (outside the latency
    // subtree, which renders as a native histogram) appears as a series.
    fn check_leaves(node: &Json, path: &mut Vec<String>, text: &str) {
        match node {
            Json::Obj(members) => {
                for (k, v) in members {
                    if path.is_empty() && k == "latency_us" {
                        continue;
                    }
                    path.push(k.clone());
                    check_leaves(v, path, text);
                    path.pop();
                }
            }
            Json::Uint(_) | Json::Int(_) | Json::Float(_) => {
                let name = format!("ucsim_{}", path.join("_"));
                assert!(
                    text.lines().any(|l| l.starts_with(&format!("{name} "))),
                    "JSON leaf {name} missing from exposition:\n{text}"
                );
            }
            _ => {}
        }
    }
    check_leaves(&doc, &mut Vec::new(), &text);

    // The latency subtree renders as a labeled histogram with cumulative
    // buckets, +Inf, _sum and _count.
    assert!(
        text.contains("# TYPE ucsim_request_latency_us histogram"),
        "{text}"
    );
    assert!(
        text.contains("ucsim_request_latency_us_bucket{endpoint=\"POST /v1/sim\",le=\"+Inf\"} "),
        "{text}"
    );
    assert!(
        text.contains("ucsim_request_latency_us_count{endpoint=\"POST /v1/sim\"} "),
        "{text}"
    );

    // Counters are monotone across scrapes: more traffic, second scrape,
    // strictly more requests and no counter went backwards.
    let first_requests = series_value(&text, "ucsim_requests").expect("requests series");
    for _ in 0..3 {
        let h = request(&addr, "GET", "/v1/healthz", b"").unwrap();
        assert_eq!(h.status, 200);
    }
    let (_, _, text2) = raw_request(
        &addr,
        "GET",
        "/v1/metrics",
        &[("accept", "text/plain")],
        b"",
    );
    let second_requests = series_value(&text2, "ucsim_requests").expect("requests series");
    assert!(
        second_requests >= first_requests + 3.0,
        "requests went from {first_requests} to {second_requests}"
    );
    for name in [
        "ucsim_workers_jobs_executed",
        "ucsim_queue_rejected_429",
        "ucsim_cache_hits",
        "ucsim_cache_misses",
    ] {
        let a = series_value(&text, name).unwrap_or_else(|| panic!("missing {name}"));
        let b = series_value(&text2, name).unwrap_or_else(|| panic!("missing {name}"));
        assert!(b >= a, "{name} went backwards: {a} -> {b}");
    }

    server.shutdown();
}

/// Request IDs: a client-supplied `X-Request-Id` is echoed on the
/// response; a server-minted one appears when the client sends none; and
/// the ID submitted with a job that panics its worker surfaces in the
/// job's failure envelope.
#[test]
fn request_ids_echo_and_reach_failure_envelopes() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr().to_string();

    // Client-supplied ID round-trips on the response headers.
    let mut client = Client::new(&addr);
    client.set_request_id(Some("obs-echo-1".to_owned()));
    let r = client.request("GET", "/v1/healthz", b"").unwrap();
    assert_eq!(r.status, 200);
    assert_eq!(r.header("x-request-id"), Some("obs-echo-1"));

    // No ID supplied: the server mints one.
    let r = request(&addr, "GET", "/v1/healthz", b"").unwrap();
    let minted = r.header("x-request-id").expect("server-minted id");
    assert!(minted.starts_with("req-"), "minted id: {minted}");

    // A job whose worker panics carries the submitting request's ID all
    // the way into the failure envelope.
    client.set_request_id(Some("obs-panic-7".to_owned()));
    let r = client
        .request(
            "POST",
            "/v1/sim",
            br#"{"workload":"test-panic","warmup":100,"insts":2000,"background":true}"#,
        )
        .unwrap();
    assert_eq!(r.status, 202, "body: {}", r.body_str());
    assert_eq!(r.header("x-request-id"), Some("obs-panic-7"));
    let id = parse_json(&r.body_str())
        .get("id")
        .unwrap()
        .as_u64()
        .unwrap();

    let deadline = Instant::now() + Duration::from_secs(30);
    let failure = loop {
        let r = request(&addr, "GET", &format!("/v1/jobs/{id}"), b"").unwrap();
        assert_eq!(r.status, 200);
        let v = parse_json(&r.body_str());
        // The one-release `status` alias is gone in v1.1.
        assert!(v.get("status").is_none(), "v1.1 dropped the status alias");
        match v.get("state").unwrap().as_str().unwrap() {
            "failed" => break v.get("error").expect("failed job has an error").clone(),
            "done" => panic!("test-panic job finished without failing"),
            _ => {
                assert!(Instant::now() < deadline, "job never settled");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };
    assert_eq!(
        failure.get("code").unwrap().as_str(),
        Some("simulation_failed")
    );
    assert!(failure
        .get("message")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("worker panicked"));
    assert_eq!(
        failure.get("request_id").unwrap().as_str(),
        Some("obs-panic-7")
    );

    // The pool supervisor respawned the panicked worker.
    let m = parse_json(
        &request(&addr, "GET", "/v1/metrics", b"")
            .unwrap()
            .body_str(),
    );
    assert_eq!(
        m.get("workers")
            .unwrap()
            .get("workers_respawned")
            .unwrap()
            .as_u64(),
        Some(1)
    );
    drop(client);
    server.shutdown();
}

/// A job that actually executed exposes a per-stage profile; cache hits
/// and unknown jobs answer honestly.
#[test]
fn job_profile_reports_stage_timings_and_counters() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr().to_string();

    let r = request(
        &addr,
        "POST",
        "/v1/sim",
        br#"{"workload":"bm-cc","seed":7,"warmup":1000,"insts":20000,"background":true}"#,
    )
    .unwrap();
    assert_eq!(r.status, 202, "body: {}", r.body_str());
    let id = parse_json(&r.body_str())
        .get("id")
        .unwrap()
        .as_u64()
        .unwrap();

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let r = request(&addr, "GET", &format!("/v1/jobs/{id}"), b"").unwrap();
        let v = parse_json(&r.body_str());
        match v.get("state").unwrap().as_str().unwrap() {
            "done" => {
                // v1.1: canonical `result` only — the `response` alias
                // from the v1 deprecation cycle no longer renders.
                assert!(v.get("result").is_some());
                assert!(v.get("response").is_none(), "response alias removed");
                assert!(v.get("created_at").unwrap().as_u64().is_some());
                break;
            }
            "failed" => panic!("job failed: {}", r.body_str()),
            _ => {
                assert!(Instant::now() < deadline, "job never finished");
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }

    let r = request(&addr, "GET", &format!("/v1/jobs/{id}/profile"), b"").unwrap();
    assert_eq!(r.status, 200, "body: {}", r.body_str());
    let v = parse_json(&r.body_str());
    assert_eq!(v.get("state").unwrap().as_str(), Some("done"));
    let profile = v.get("profile").expect("profile key");
    assert_ne!(profile, &Json::Null, "executed job must carry a profile");
    assert_eq!(profile.get("jobs").unwrap().as_u64(), Some(1));
    assert!(profile.get("wall_ns").unwrap().as_u64().unwrap() > 0);
    let stages = profile.get("stages").unwrap();
    for stage in ["predict", "uc_lookup", "decode", "retire"] {
        let s = stages
            .get(stage)
            .unwrap_or_else(|| panic!("stage {stage} missing: {profile}"));
        assert!(
            s.get("count").unwrap().as_u64().unwrap() > 0,
            "stage {stage} never fired"
        );
    }
    let counters = profile.get("counters").unwrap();
    let hits = counters.get("oc_hits").unwrap().as_u64().unwrap();
    let misses = counters.get("oc_misses").unwrap().as_u64().unwrap();
    assert!(hits + misses > 0, "uop-cache lookups unaccounted");

    // Unknown job: 404 envelope, not a panic.
    let r = request(&addr, "GET", "/v1/jobs/9999/profile", b"").unwrap();
    assert_eq!(r.status, 404);

    server.shutdown();
}

/// `/v1/healthz` reports queue/worker/store state and `/v1/version`
/// reports build identity; the legacy `/healthz` alias is gone in v1.1.
#[test]
fn healthz_and_version_describe_the_server() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr().to_string();

    let r = request(&addr, "GET", "/v1/healthz", b"").unwrap();
    assert_eq!(r.status, 200);
    let v = parse_json(&r.body_str());
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
    let queue = v.get("queue").unwrap();
    assert_eq!(queue.get("capacity").unwrap().as_u64(), Some(8));
    let workers = v.get("workers").unwrap();
    assert_eq!(workers.get("alive").unwrap().as_u64(), Some(2));
    assert_eq!(workers.get("count").unwrap().as_u64(), Some(2));
    let store = v.get("store").unwrap();
    assert_eq!(store.get("present").unwrap().as_bool(), Some(false));
    assert_eq!(store.get("writable").unwrap().as_bool(), Some(true));

    // The deprecated alias completed its one-release cycle (DESIGN.md
    // §4.1) and was removed with the v1.1 contract.
    let legacy = request(&addr, "GET", "/healthz", b"").unwrap();
    assert_eq!(legacy.status, 404);

    let r = request(&addr, "GET", "/v1/version", b"").unwrap();
    assert_eq!(r.status, 200);
    let v = parse_json(&r.body_str());
    assert_eq!(
        v.get("version").unwrap().as_str(),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert_eq!(v.get("api").unwrap().as_str(), Some("v1.2"));
    assert_eq!(v.get("store_format").unwrap().as_str(), Some("UCSTOR03"));
    let features = v.get("features").unwrap();
    assert_eq!(features.get("observability").unwrap().as_bool(), Some(true));
    assert_eq!(
        features.get("test_workloads").unwrap().as_bool(),
        Some(true)
    );
    assert!(features.get("fault_injection").unwrap().as_bool().is_some());
    assert_eq!(features.get("programs").unwrap().as_bool(), Some(true));

    server.shutdown();
}

/// The trace endpoint drains span events with a resumable cursor.
#[test]
fn trace_endpoint_streams_span_events() {
    let server = Server::start(test_config()).unwrap();
    let addr = server.local_addr().to_string();

    // Traffic to trace, including a job execution.
    let r = request(
        &addr,
        "POST",
        "/v1/sim",
        br#"{"workload":"test-sleep:10","warmup":100,"insts":2000}"#,
    )
    .unwrap();
    assert_eq!(r.status, 200, "body: {}", r.body_str());

    let r = request(&addr, "GET", "/v1/trace", b"").unwrap();
    assert_eq!(r.status, 200);
    let v = parse_json(&r.body_str());
    assert_eq!(v.get("enabled").unwrap().as_bool(), Some(true));
    let events = v.get("events").unwrap().as_arr().unwrap();
    assert!(!events.is_empty(), "no span events recorded");
    let kinds: Vec<&str> = events
        .iter()
        .map(|e| e.get("kind").unwrap().as_str().unwrap())
        .collect();
    for expected in ["accept", "parse", "handle", "queue_wait", "execute"] {
        assert!(kinds.contains(&expected), "no {expected} span in {kinds:?}");
    }
    for e in events {
        assert!(e.get("seq").unwrap().as_u64().is_some());
        assert!(e.get("start_us").unwrap().as_u64().is_some());
        assert_eq!(e.get("request_id").unwrap().as_str().unwrap().len(), 16);
    }
    let next = v.get("next_since").unwrap().as_u64().unwrap();
    assert!(next > 0);

    // Resuming from the cursor re-delivers nothing already consumed.
    let r = request(&addr, "GET", &format!("/v1/trace?since={next}"), b"").unwrap();
    let v2 = parse_json(&r.body_str());
    for e in v2.get("events").unwrap().as_arr().unwrap() {
        assert!(e.get("seq").unwrap().as_u64().unwrap() >= next);
    }

    server.shutdown();
}

//! Property-based tests of the uop cache invariants under arbitrary
//! instruction streams and fill/lookup/invalidate interleavings.

use proptest::prelude::*;
use ucsim::model::{Addr, BranchExec, DynInst, InstClass, PwId, IMM_DISP_BYTES, UOP_BYTES};
use ucsim::uopcache::{
    AccumulationBuffer, CompactionPolicy, UopCache, UopCacheConfig, UopCacheEntry,
};

/// A compact recipe for one synthetic instruction in a stream.
#[derive(Debug, Clone)]
struct InstSpec {
    len: u8,
    uops: u8,
    imm: u8,
    microcoded: bool,
    taken_branch: bool,
}

fn inst_spec() -> impl Strategy<Value = InstSpec> {
    (1u8..=15, 1u8..=8, 0u8..=2, any::<bool>(), any::<bool>()).prop_map(
        |(len, uops, imm, microcoded, taken_branch)| InstSpec {
            len,
            uops,
            imm,
            microcoded: microcoded && uops >= 4,
            taken_branch,
        },
    )
}

/// Materializes a sequential instruction stream from specs, with taken
/// branches jumping to fresh addresses.
fn build_stream(specs: &[InstSpec], base: u64) -> Vec<(DynInst, bool)> {
    let mut out = Vec::with_capacity(specs.len());
    let mut pc = base;
    for (i, s) in specs.iter().enumerate() {
        if s.taken_branch {
            let target = base + 0x4000 + (i as u64 * 64);
            let inst = DynInst::branch(
                Addr::new(pc),
                s.len,
                InstClass::JumpDirect,
                BranchExec {
                    taken: true,
                    target: Addr::new(target),
                },
            );
            out.push((inst, true));
            pc = target;
        } else {
            let inst = DynInst::simple(Addr::new(pc), s.len, InstClass::IntAlu)
                .with_uops(s.uops)
                .with_imm_disp(s.imm)
                .with_microcoded(s.microcoded);
            out.push((inst, false));
            pc += s.len as u64;
        }
    }
    out
}

fn check_entry_invariants(e: &UopCacheEntry, cfg: &UopCacheConfig) {
    assert!(e.uops >= 1, "entries are never empty");
    assert!(e.uops <= cfg.max_uops_per_entry, "uop limit: {e:?}");
    assert!(e.imm_disp <= cfg.max_imm_disp_per_entry, "imm limit: {e:?}");
    assert!(
        e.ucoded_insts <= cfg.max_ucoded_per_entry,
        "ucode limit: {e:?}"
    );
    assert!(
        e.uops * UOP_BYTES + e.imm_disp * IMM_DISP_BYTES <= cfg.entry_byte_budget(),
        "byte budget: {e:?}"
    );
    assert!(e.end.get() > e.start.get(), "non-empty coverage: {e:?}");
    let line_limit = if cfg.clasp { cfg.clasp_max_lines } else { 1 };
    assert!(e.pc_lines <= line_limit, "line span: {e:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every entry the accumulation buffer emits satisfies every
    /// termination constraint, for baseline and CLASP configurations.
    #[test]
    fn builder_entries_respect_all_limits(
        specs in prop::collection::vec(inst_spec(), 1..200),
        clasp in any::<bool>(),
    ) {
        let cfg = if clasp {
            UopCacheConfig::baseline_2k().with_clasp()
        } else {
            UopCacheConfig::baseline_2k()
        };
        let mut acc = AccumulationBuffer::new(cfg.clone());
        let stream = build_stream(&specs, 0x10_000);
        let mut entries = Vec::new();
        for (i, (inst, taken)) in stream.iter().enumerate() {
            entries.extend(acc.push(inst, PwId(i as u64 / 6), *taken));
        }
        entries.extend(acc.flush());
        for e in &entries {
            check_entry_invariants(e, &cfg);
        }
    }

    /// Entry coverage is contiguous and non-overlapping along each
    /// sequential run.
    #[test]
    fn builder_coverage_is_contiguous(
        specs in prop::collection::vec(inst_spec(), 1..150),
    ) {
        let cfg = UopCacheConfig::baseline_2k().with_clasp();
        let mut acc = AccumulationBuffer::new(cfg.clone());
        let stream = build_stream(&specs, 0x20_000);
        let mut entries = Vec::new();
        for (i, (inst, taken)) in stream.iter().enumerate() {
            entries.extend(acc.push(inst, PwId(i as u64), *taken));
        }
        entries.extend(acc.flush());
        // Consecutive entries either continue exactly (fall-through cut)
        // or restart at a branch target (disjoint region).
        for w in entries.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            prop_assert!(
                b.start == a.end || b.start.get() >= 0x14_000,
                "gap without a branch: {a:?} -> {b:?}"
            );
        }
    }

    /// The cache never exceeds its physical capacity and lookups only hit
    /// exact entry starts, under arbitrary fill streams and policies.
    #[test]
    fn cache_capacity_and_tag_exactness(
        specs in prop::collection::vec(inst_spec(), 1..300),
        policy_pick in 0u8..4,
    ) {
        let cfg = match policy_pick {
            0 => UopCacheConfig::baseline_2k(),
            1 => UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Rac, 2),
            2 => UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Pwac, 2),
            _ => UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 3),
        };
        let mut acc = AccumulationBuffer::new(cfg.clone());
        let mut oc = UopCache::new(cfg.clone());
        let stream = build_stream(&specs, 0x30_000);
        for (i, (inst, taken)) in stream.iter().enumerate() {
            for e in acc.push(inst, PwId(i as u64 / 4), *taken) {
                oc.fill(e);
            }
        }
        // Physical capacity: lines * ways bounded; bytes per line bounded.
        prop_assert!(oc.valid_lines() <= cfg.sets * cfg.ways);
        prop_assert!(oc.resident_uops() <= cfg.capacity_uops() as u64);
        // Tag exactness: a hit returns an entry starting at the address.
        for e in oc.iter_entries() {
            prop_assert_eq!(e.start, e.start);
        }
        let starts: Vec<Addr> = oc.iter_entries().map(|e| e.start).collect();
        for s in starts {
            let got = oc.lookup(s).expect("resident start must hit");
            prop_assert_eq!(got.start, s);
        }
    }

    /// SMC invalidation is complete: after probing a line, no resident
    /// entry overlaps it — under any policy, including CLASP spans.
    #[test]
    fn invalidation_is_complete(
        specs in prop::collection::vec(inst_spec(), 1..200),
        probe_offset in 0u64..0x600,
    ) {
        let cfg = UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 2);
        let mut acc = AccumulationBuffer::new(cfg.clone());
        let mut oc = UopCache::new(cfg);
        let stream = build_stream(&specs, 0x40_000);
        for (i, (inst, taken)) in stream.iter().enumerate() {
            for e in acc.push(inst, PwId(i as u64 / 4), *taken) {
                oc.fill(e);
            }
        }
        if let Some(e) = acc.flush() {
            oc.fill(e);
        }
        let line = Addr::new(0x40_000 + probe_offset).line();
        oc.invalidate_icache_line(line);
        let survivors = oc.iter_entries().filter(|e| e.overlaps_line(line)).count();
        prop_assert_eq!(survivors, 0, "stale entries after SMC probe");
    }

    /// Duplicate fills never create two entries with the same start.
    #[test]
    fn no_duplicate_starts(
        specs in prop::collection::vec(inst_spec(), 1..120),
    ) {
        let cfg = UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Rac, 2);
        let mut oc = UopCache::new(cfg.clone());
        // Fill the same stream twice.
        for _ in 0..2 {
            let mut acc = AccumulationBuffer::new(cfg.clone());
            let stream = build_stream(&specs, 0x50_000);
            for (i, (inst, taken)) in stream.iter().enumerate() {
                for e in acc.push(inst, PwId(i as u64 / 4), *taken) {
                    oc.fill(e);
                }
            }
        }
        let mut starts: Vec<u64> = oc.iter_entries().map(|e| e.start.get()).collect();
        let n = starts.len();
        starts.sort_unstable();
        starts.dedup();
        prop_assert_eq!(starts.len(), n, "duplicate entry starts resident");
    }
}

//! Property-based tests of the workload substrate and the decoupled
//! front end: arbitrary profiles must produce structurally valid programs,
//! control-flow-consistent traces, and PW streams that tile the trace.

use proptest::prelude::*;
use ucsim::bpu::{BpuConfig, PwGenerator};
use ucsim::trace::{Program, Trace, WorkloadProfile};

/// Strategy over small random-but-valid workload profiles.
fn small_profile() -> impl Strategy<Value = WorkloadProfile> {
    (
        1u64..1_000_000,
        4usize..40,
        2.0f64..8.0,
        1.5f64..5.0,
        0.0f64..0.15,
        0.0f64..0.15,
        0.0f64..0.45,
        0.3f64..1.6,
    )
        .prop_map(
            |(seed, funcs, blocks, insts, p_loop, p_call, p_cond, zipf)| {
                let mut p = WorkloadProfile::quick_test();
                p.seed = seed;
                p.num_funcs = funcs;
                p.blocks_per_func_mean = blocks;
                p.insts_per_block_mean = insts;
                p.p_loop = p_loop;
                p.p_call = p_call;
                p.p_cond = p_cond;
                p.func_zipf_s = zipf;
                p
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generation never violates structural invariants (Program::generate
    /// panics internally on violation) and is deterministic.
    #[test]
    fn programs_validate_and_replay(profile in small_profile()) {
        let a = Program::generate(&profile);
        let b = Program::generate(&profile);
        prop_assert_eq!(a.static_insts(), b.static_insts());
        prop_assert!(a.static_uops() >= a.static_insts());
    }

    /// The dynamic stream is control-flow consistent: every instruction
    /// starts where the previous one ended (or at its taken target).
    #[test]
    fn traces_are_control_flow_consistent(profile in small_profile()) {
        let prog = Program::generate(&profile);
        let trace: Vec<_> = prog.walk(&profile).take(4_000).collect();
        for w in trace.windows(2) {
            prop_assert_eq!(w[1].pc, w[0].next_pc());
        }
    }

    /// Trace serialization is lossless for arbitrary workloads.
    #[test]
    fn trace_roundtrip(profile in small_profile()) {
        let prog = Program::generate(&profile);
        let t = Trace::record(prog.walk(&profile).take(1_500));
        let back = Trace::from_bytes(&t.to_bytes()).unwrap();
        prop_assert_eq!(t, back);
    }

    /// Prediction windows tile the dynamic stream exactly: concatenating
    /// PW instruction batches reproduces the trace, windows never span an
    /// I-cache line, and every termination rule is respected.
    #[test]
    fn pws_tile_the_trace(profile in small_profile()) {
        let prog = Program::generate(&profile);
        let trace: Vec<_> = prog.walk(&profile).take(3_000).collect();
        let expect = trace.clone();
        let mut gen = PwGenerator::new(BpuConfig::default(), trace.into_iter());
        let mut replayed = Vec::new();
        let max_nt = BpuConfig::default().max_not_taken_per_pw;
        while let Some(b) = gen.advance() {
            // Window geometry: starts where its first inst starts, ends
            // where its last inst ends, stays within one I-cache line.
            prop_assert_eq!(b.pw.start, b.insts[0].pc);
            prop_assert_eq!(b.pw.end, b.insts[b.insts.len() - 1].end());
            prop_assert!(
                b.pw.start.line() == b.insts[b.insts.len() - 1].pc.line()
                    || b.pw.inst_count >= 1
            );
            prop_assert_eq!(b.pw.inst_count as usize, b.insts.len());
            // Not-taken budget: at most max_nt NT conditionals inside.
            let nt = b
                .insts
                .iter()
                .filter(|i| i.class.is_cond_branch() && !i.is_taken_branch())
                .count();
            prop_assert!(nt <= max_nt as usize + 1, "NT budget exceeded: {nt}");
            replayed.extend_from_slice(b.insts);
        }
        prop_assert_eq!(replayed, expect);
    }

    /// PW ids are strictly monotonic and sequence numbers line up.
    #[test]
    fn pw_ids_are_monotonic(profile in small_profile()) {
        let prog = Program::generate(&profile);
        let trace: Vec<_> = prog.walk(&profile).take(2_000).collect();
        let mut gen = PwGenerator::new(BpuConfig::default(), trace.into_iter());
        let mut last_id = None;
        let mut next_seq = 0u64;
        while let Some(b) = gen.advance() {
            if let Some(prev) = last_id {
                prop_assert_eq!(b.pw.id.0, prev + 1);
            }
            prop_assert_eq!(b.pw.first_seq, next_seq);
            next_seq = b.pw.end_seq();
            last_id = Some(b.pw.id.0);
        }
    }
}

//! Closed-form validation: directed micro-kernels whose front-end
//! behaviour can be derived on paper, asserted against the full simulator.

use ucsim::pipeline::{SimConfig, SimReport, Simulator};
use ucsim::trace::kernels;
use ucsim::uopcache::UopCacheConfig;

fn run(program: &ucsim::trace::Program, seed: u64, oc: UopCacheConfig) -> SimReport {
    let profile = kernels::kernel_profile(seed);
    let cfg = SimConfig::table1()
        .with_uop_cache(oc)
        .with_insts(10_000, 60_000);
    Simulator::new(cfg).run(&profile, program)
}

/// A warm straight-line sled that fits the cache streams ~entirely from
/// the uop cache, with zero conditional mispredictions.
#[test]
fn straight_line_streams_from_oc() {
    let prog = kernels::straight_line(120); // ~130 uops ≪ 2K
    let r = run(&prog, 1, UopCacheConfig::baseline_2k());
    assert_eq!(r.direction_mispredicts, 0, "sled has no conditionals");
    assert!(
        r.oc_fetch_ratio > 0.95,
        "warm sled must stream from the OC: {}",
        r.oc_fetch_ratio
    );
    assert!(r.oc_hit_rate > 0.9, "{}", r.oc_hit_rate);
}

/// A sled far larger than the cache thrashes: LRU retains nothing across
/// laps, so the fetch ratio collapses.
#[test]
fn oversized_sled_thrashes() {
    let prog = kernels::straight_line(4_000); // ~4.3K uops > 2K capacity
    let small = run(&prog, 2, UopCacheConfig::baseline_2k());
    let big = run(&prog, 2, UopCacheConfig::baseline_with_capacity(8192));
    assert!(
        small.oc_fetch_ratio < 0.35,
        "streaming beyond capacity must thrash: {}",
        small.oc_fetch_ratio
    );
    assert!(
        big.oc_fetch_ratio > 0.9,
        "8K holds the whole sled: {}",
        big.oc_fetch_ratio
    );
}

/// A tight loop hits the uop cache from the second iteration on.
#[test]
fn tight_loop_lives_in_the_oc() {
    let prog = kernels::tight_loop(5, 24.0);
    let r = run(&prog, 3, UopCacheConfig::baseline_2k());
    assert!(r.oc_fetch_ratio > 0.9, "{}", r.oc_fetch_ratio);
    // Loop exits are mostly stable trips: modest MPKI.
    assert!(r.mpki < 25.0, "{}", r.mpki);
}

/// With a loop cache at least as large as the body, iterations migrate
/// out of the uop cache into the loop buffer.
#[test]
fn loop_cache_captures_the_loop() {
    let prog = kernels::tight_loop(5, 24.0);
    let profile = kernels::kernel_profile(4);
    let mut cfg = SimConfig::table1().with_insts(10_000, 60_000);
    cfg.core.loop_cache_uops = 32;
    let r = Simulator::new(cfg).run(&profile, &prog);
    assert!(
        r.loop_uops > r.uops / 4,
        "loop cache must serve a large share: {} of {}",
        r.loop_uops,
        r.uops
    );
}

/// Call chains are fully RAS-predictable: no target mispredictions once
/// the BTB knows the calls.
#[test]
fn call_chain_is_ras_perfect() {
    let prog = kernels::call_chain(8); // well under the 32-entry RAS
    let r = run(&prog, 5, UopCacheConfig::baseline_2k());
    assert_eq!(
        r.target_mispredicts, 0,
        "returns must be RAS-predicted in a shallow chain"
    );
    assert!(r.mpki < 1.0, "{}", r.mpki);
}

/// Coin-flip branches are unpredictable by construction: TAGE cannot beat
/// the coin, so the direction-MPKI approaches the branch rate × 50%.
#[test]
fn coin_flips_defeat_tage() {
    let prog = kernels::coin_flip_grid(8, 0.5);
    let fair = run(&prog, 6, UopCacheConfig::baseline_2k());
    let prog_biased = kernels::coin_flip_grid(8, 0.98);
    let biased = run(&prog_biased, 6, UopCacheConfig::baseline_2k());
    assert!(
        fair.mpki > 5.0 * biased.mpki.max(0.5),
        "fair coins {} vs biased {}",
        fair.mpki,
        biased.mpki
    );
    assert!(
        fair.mpki > 40.0,
        "8 coin flips per ~27 insts: {}",
        fair.mpki
    );
}

/// The misprediction-latency gap between OC-fed and decoder-fed branches:
/// the same coin-flip kernel resolves faster when it fits the uop cache
/// than when the cache is disabled-by-thrashing (paper Section III-C).
#[test]
fn oc_resolves_mispredicts_earlier() {
    // Same branchy kernel; tiny cache thrashes when the kernel is padded
    // beyond capacity with sled instructions.
    let small_kernel = kernels::coin_flip_grid(8, 0.5);
    let fits = run(&small_kernel, 7, UopCacheConfig::baseline_2k());
    // Interleave: run the same branches but from the decoder by shrinking
    // effective capacity (32-uop cache: sets can't go below one; use a
    // huge kernel instead).
    let huge = kernels::coin_flip_grid(600, 0.5); // ~1.9K uops of branches + sleds
    let thrash = run(&huge, 7, UopCacheConfig::baseline_2k());
    // The decoder-path share is higher in `thrash`, so its average
    // fetch→resolve latency carries more decode-pipe cycles.
    if thrash.oc_fetch_ratio < fits.oc_fetch_ratio - 0.1 {
        assert!(
            thrash.avg_mispredict_latency >= fits.avg_mispredict_latency - 0.5,
            "decoder-fed branches must not resolve faster: {} vs {}",
            thrash.avg_mispredict_latency,
            fits.avg_mispredict_latency
        );
    }
}

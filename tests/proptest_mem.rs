//! Property-based tests of the cache/replacement substrate.

use proptest::prelude::*;
use ucsim::mem::{AccessKind, Cache, CacheConfig, MemoryHierarchy, ReplacementPolicy};
use ucsim::model::LineAddr;

fn line(n: u64) -> LineAddr {
    LineAddr::from_line_number(n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Occupancy never exceeds capacity, and a line is resident right
    /// after its fill, under arbitrary access/fill/invalidate traffic.
    #[test]
    fn cache_occupancy_and_residency(
        ops in prop::collection::vec((0u8..3, 0u64..200), 1..500),
        set_bits in 1u32..5,
        ways in 1usize..9,
        policy_pick in 0u8..3,
    ) {
        let policy = match policy_pick {
            0 => ReplacementPolicy::Lru,
            1 => ReplacementPolicy::Srrip,
            _ => ReplacementPolicy::Lru, // TreePlru needs pow2 ways
        };
        let sets = 1usize << set_bits;
        let mut c = Cache::new(CacheConfig::new("t", sets, ways, policy));
        for (op, n) in ops {
            match op {
                0 => {
                    let _ = c.access(line(n));
                }
                1 => {
                    c.fill(line(n));
                    prop_assert!(c.probe(line(n)), "fill must make resident");
                }
                _ => {
                    c.invalidate(line(n));
                    prop_assert!(!c.probe(line(n)), "invalidate must remove");
                }
            }
            prop_assert!(c.resident_lines() <= sets * ways);
        }
    }

    /// LRU never evicts the line that was just touched when the set has
    /// more than one way.
    #[test]
    fn lru_protects_the_mru_line(
        lines in prop::collection::vec(0u64..64, 2..200),
        ways in 2usize..9,
    ) {
        // Single set: every line conflicts.
        let mut c = Cache::new(CacheConfig::new("t", 1, ways, ReplacementPolicy::Lru));
        let mut last: Option<LineAddr> = None;
        for n in lines {
            let l = line(n);
            if !c.access(l) {
                let evicted = c.fill(l);
                if let (Some(prev), Some(ev)) = (last, evicted) {
                    prop_assert_ne!(ev, prev, "evicted the MRU line");
                    prop_assert_ne!(ev, l);
                }
            }
            last = Some(l);
        }
    }

    /// Hierarchy latencies always come from the configured ladder, and a
    /// repeat access is never slower than the first.
    #[test]
    fn hierarchy_latency_ladder(addrs in prop::collection::vec(0u64..5000, 1..300)) {
        let mut mem = MemoryHierarchy::new(Default::default());
        let cfg = mem.config().clone();
        let valid = [cfg.l1_latency, cfg.l2_latency, cfg.l3_latency, cfg.dram_latency];
        for n in addrs {
            let first = mem.access(AccessKind::Fetch, line(n));
            prop_assert!(valid.contains(&first), "latency {first} not in ladder");
            let second = mem.access(AccessKind::Fetch, line(n));
            prop_assert!(second <= first, "repeat slower: {second} > {first}");
            prop_assert_eq!(second, cfg.l1_latency, "repeat must hit L1");
        }
    }
}

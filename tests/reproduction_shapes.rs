//! Reproduction-shape checks: short-run versions of the qualitative
//! claims each paper figure makes. The full-length numbers live in
//! EXPERIMENTS.md; these tests pin the *shapes* so regressions in any
//! substrate (workloads, predictor, uop cache, timing) surface in CI.

use ucsim::pipeline::{SimConfig, SimReport, Simulator};
use ucsim::trace::{Program, WorkloadProfile};
use ucsim::uopcache::{CompactionPolicy, UopCacheConfig};

fn run(name: &str, oc: UopCacheConfig) -> SimReport {
    let profile = WorkloadProfile::by_name(name).expect("table2 workload");
    let program = Program::generate(&profile);
    let cfg = SimConfig::table1()
        .with_uop_cache(oc)
        .with_insts(20_000, 150_000);
    Simulator::new(cfg).run(&profile, &program)
}

/// Figure 3/4 shape: capacity monotonically improves fetch ratio and
/// decoder power on capacity-pressured workloads.
#[test]
fn capacity_curves_are_monotone() {
    for name in ["bm-cc", "bm-lla", "sp(tr_cnt)"] {
        let mut last_ratio = -1.0;
        let mut last_power = f64::INFINITY;
        for uops in [2048usize, 8192, 65536] {
            let r = run(name, UopCacheConfig::baseline_with_capacity(uops));
            assert!(
                r.oc_fetch_ratio >= last_ratio - 0.01,
                "{name}@{uops}: ratio {} after {}",
                r.oc_fetch_ratio,
                last_ratio
            );
            assert!(
                r.decoder_power <= last_power + 0.01,
                "{name}@{uops}: power {} after {}",
                r.decoder_power,
                last_power
            );
            last_ratio = r.oc_fetch_ratio;
            last_power = r.decoder_power;
        }
    }
}

/// Figure 5 shape: entries are dominated by the sub-40-byte buckets plus
/// a meaningful 40-64 B tail; nothing exceeds the 64 B line.
#[test]
fn entry_sizes_match_figure5_shape() {
    let r = run("bm-cc", UopCacheConfig::baseline_2k());
    let d = &r.entry_size_dist;
    assert!(d[0] > 0.05, "tiny entries must exist: {d:?}");
    assert!(d[0] + d[1] > 0.35, "sub-40B majority-ish: {d:?}");
    assert!(d[2] > 0.05, "large entries exist: {d:?}");
    assert!(d[3] < 1e-9, "nothing above 64 B: {d:?}");
}

/// Figure 6 shape: roughly half of all entries terminate at a
/// predicted-taken branch (paper average 49.4%).
#[test]
fn taken_branch_termination_near_half() {
    let r = run("bm-cc", UopCacheConfig::baseline_2k());
    assert!(
        (0.30..0.70).contains(&r.taken_term_frac),
        "taken-term {}",
        r.taken_term_frac
    );
}

/// Figure 9 shape: a substantial minority of CLASP entries span the
/// I-cache boundary (paper: up to ~40%).
#[test]
fn clasp_spanning_in_figure9_range() {
    let r = run("bm-cc", UopCacheConfig::baseline_2k().with_clasp());
    assert!(
        (0.10..0.50).contains(&r.spanning_frac),
        "spanning {}",
        r.spanning_frac
    );
}

/// Figure 12 shape: most PWs produce one entry, a solid minority two,
/// few three (paper: 64.5% / 31.6% / 3.9%).
#[test]
fn entries_per_pw_matches_figure12_shape() {
    let r = run("bm-cc", UopCacheConfig::baseline_2k());
    let d = r.entries_per_pw;
    assert!(d[0] > 0.5, "singles dominate: {d:?}");
    assert!(d[1] > 0.1, "doubles are a solid minority: {d:?}");
    assert!(d[1] < d[0], "{d:?}");
    assert!(d[2] < d[1], "{d:?}");
}

/// Figures 15–17 shape: every optimization beats the baseline on decoder
/// power and fetch ratio, and compaction beats CLASP-only.
#[test]
fn optimization_ladder_shape() {
    let name = "bm-lla";
    let base = run(name, UopCacheConfig::baseline_2k());
    let clasp = run(name, UopCacheConfig::baseline_2k().with_clasp());
    let fpwac = run(
        name,
        UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 2),
    );
    assert!(clasp.decoder_power <= base.decoder_power * 1.02);
    assert!(fpwac.decoder_power <= clasp.decoder_power * 1.005);
    assert!(fpwac.oc_fetch_ratio >= base.oc_fetch_ratio);
    assert!(fpwac.upc >= base.upc, "{} vs {}", fpwac.upc, base.upc);
}

/// Figure 18/19 shape: under F-PWAC a nontrivial share of fills compact,
/// and all three techniques add up to the whole.
#[test]
fn compaction_accounting_shape() {
    let r = run(
        "bm-cc",
        UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 2),
    );
    assert!(r.compacted_fill_frac > 0.08, "{}", r.compacted_fill_frac);
    let (rac, pwac, fpwac) = r.compaction_dist;
    assert!((rac + pwac + fpwac - 1.0).abs() < 1e-9);
    assert!(rac > 0.0);
}

/// Figure 22 shape: gains shrink at the 4K baseline but survive.
#[test]
fn gains_shrink_but_survive_at_4k() {
    let name = "bm-lla";
    let b2 = run(name, UopCacheConfig::baseline_2k());
    let f2 = run(
        name,
        UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 2),
    );
    let b4 = run(name, UopCacheConfig::baseline_with_capacity(4096));
    let f4 = run(
        name,
        UopCacheConfig::baseline_with_capacity(4096).with_compaction(CompactionPolicy::Fpwac, 2),
    );
    let gain2 = f2.oc_fetch_ratio / b2.oc_fetch_ratio;
    let gain4 = f4.oc_fetch_ratio / b4.oc_fetch_ratio;
    assert!(gain4 >= 0.99, "no regression at 4K: {gain4}");
    assert!(
        gain4 <= gain2 + 0.02,
        "diminishing returns: 2K gain {gain2}, 4K gain {gain4}"
    );
}

#!/usr/bin/env bash
# Bring-your-own-workload smoke test: start a live ucsim-serve, upload a
# ucasm example through the client, run it by content ref, and check the
# served report's counters match a direct offline run of the same file.
#
# Usage: scripts/byow_smoke.sh   (binaries default to target/release;
# override with BIN=target/debug)
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=${BIN:-target/release}
ASM=${ASM:-examples/asm/dense_loop.asm}
ADDR=${ADDR:-127.0.0.1:7391}
INSTS=50000
WARMUP=5000

"$BIN/ucsim-serve" --addr "$ADDR" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT

for _ in $(seq 50); do
  if "$BIN/ucsim" client program list --addr "$ADDR" >/dev/null 2>&1; then
    break
  fi
  sleep 0.2
done

UPLOAD=$("$BIN/ucsim" client program upload "$ASM" --addr "$ADDR")
REF=$(printf '%s' "$UPLOAD" | sed -n 's/.*"ref": *"\([^"]*\)".*/\1/p' | head -1)
if [ -z "$REF" ]; then
  echo "no ref in upload response: $UPLOAD" >&2
  exit 1
fi
echo "uploaded $ASM as $REF"

SERVED=$("$BIN/ucsim" client --addr "$ADDR" --workload "$REF" \
  --insts "$INSTS" --warmup "$WARMUP")
DIRECT=$("$BIN/ucsim" --asm "$ASM" --insts "$INSTS" --warmup "$WARMUP" 2>/dev/null)

# The offline CLI prints `insts <n>` rows; the served report is JSON.
# Equal insts/uops/cycles pins the replay (UPC is derived from them).
for key in insts uops cycles; do
  s=$(printf '%s' "$SERVED" | sed -n "s/.*\"$key\": *\([0-9]*\).*/\1/p" | head -1)
  d=$(printf '%s' "$DIRECT" | awk -v k="$key" '$1 == k { print $2 }')
  if [ -z "$s" ] || [ "$s" != "$d" ]; then
    echo "$key mismatch: served=${s:-?} direct=${d:-?}" >&2
    echo "--- served ---"; echo "$SERVED"
    echo "--- direct ---"; echo "$DIRECT"
    exit 1
  fi
  echo "$key: served=$s direct=$d"
done
echo "byow smoke ok: served == direct"
